//! Reconfigurable LDS: translation victim storage in idle scratchpad
//! segments (§4.2).
//!
//! The LDS is divided into 32-byte segments (64-byte in the §6.3.1
//! ablation). Each segment carries a mode bit: **App** segments belong
//! to a live workgroup allocation and are untouchable; **Tx** segments
//! co-locate one compressed tag word with 3 (or 6) eight-byte
//! translations; **Idle** segments belong to nobody. Mode transitions
//! follow §4.2.4: an application allocation may overwrite Tx segments
//! at any time (no data movement — translations are clean), but a
//! translation insert can never claim an App segment.
//!
//! # Multi-tenancy
//!
//! With a [`TenancyConfig`] installed ([`TxLds::set_tenancy`]) the
//! structure honors the three sharing policies of `gtr_vm::tenancy`
//! (TENANCY.md §3): *partitioned* stripes the segments across tenants
//! (tenant *i* owns every segment ≡ *i* mod `tenants`, so no tenant
//! can evict another's translations); *shared* is the untenanted
//! full-key tag check; *sub-entry* (arXiv 2404.18361 §4) tags ways
//! with a canonical VM-ID-zeroed key plus a per-tenant valid mask, so
//! PPN-matching tenants collapse onto one way each owning one mask
//! bit. Sub-entry victims are forwarded on behalf of their
//! lowest-numbered sharer (see `gtr_vm::tenancy::representative`).

use gtr_sim::stats::HitMiss;
use gtr_vm::addr::{Ppn, Translation, TranslationKey, VmId, Vpn};
use gtr_vm::tenancy::{self, TenancyConfig, MAX_TENANTS};
use gtr_vm::tlb::CoalescingCounters;

use crate::compress::{match_mask, TagGroup};
use crate::config::SegmentSize;

/// Operating mode of one LDS segment (the mode bit of §4.2.4, with
/// "Idle" distinguishing never/no-longer-allocated capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentMode {
    /// No live workgroup allocation and no translations.
    #[default]
    Idle,
    /// Owned by an application workgroup allocation (LDS-mode).
    App,
    /// Holding translations (Tx-mode).
    Tx,
}

/// Upper bound on translation ways per segment (6 for 64-byte
/// segments, 3 for 32-byte); fixed-size lanes keep every segment's
/// whole tag vector in two cache lines with no per-segment heap.
const MAX_WAYS: usize = 6;

/// One LDS segment, struct-of-arrays: the lookup compares the decoded
/// VPN lane vector with one branchless [`match_mask`] pass (the
/// parallel base+delta comparators of Fig 7b) and only touches the
/// remaining lanes for the matching way.
#[derive(Debug, Clone)]
struct Segment {
    mode: SegmentMode,
    tags: TagGroup,
    /// Decoded full VPNs per way — the compare lane. Full VPNs, not
    /// compressed deltas: shootdown probes arrive at every CU's LDS
    /// under home hashing, where a delta-only compare against a foreign
    /// base would false-hit (see [`match_mask`]).
    vpns: [u64; MAX_WAYS],
    /// Full keys per way, consulted only on a VPN lane match to settle
    /// the VM-ID/VRF-ID identity (§7.2 SR-IOV spaces).
    keys: [TranslationKey; MAX_WAYS],
    ppns: [Ppn; MAX_WAYS],
    last_use: [u64; MAX_WAYS],
    /// Per-tenant valid masks per way, meaningful only under sub-entry
    /// sharing (arXiv 2404.18361 §4): bit *t* set means tenant *t*
    /// shares the way's canonical-key translation.
    tmasks: [u8; MAX_WAYS],
    /// Coalesced reach per way: the way covers `2^span` contiguous
    /// pages from its (span-aligned) base VPN. Always 0 with
    /// coalescing off.
    spans: [u8; MAX_WAYS],
    /// Occupancy bitmask over the first `ways()` lanes.
    valid: u32,
}

impl Segment {
    fn new() -> Self {
        Self {
            mode: SegmentMode::Idle,
            tags: TagGroup::lds(),
            vpns: [0; MAX_WAYS],
            keys: [TranslationKey::for_vpn(gtr_vm::addr::Vpn(0)); MAX_WAYS],
            ppns: [Ppn(0); MAX_WAYS],
            last_use: [0; MAX_WAYS],
            tmasks: [0; MAX_WAYS],
            spans: [0; MAX_WAYS],
            valid: 0,
        }
    }

    /// Index of the way holding `key`, in slot order (the order the
    /// old early-exit scan returned), or `None`.
    fn find(&self, ways: usize, key: TranslationKey) -> Option<usize> {
        let mut m = match_mask(&self.vpns[..ways], self.valid, key.vpn.0);
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.keys[i] == key {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    fn set(&mut self, i: usize, key: TranslationKey, ppn: Ppn, tick: u64, tmask: u8, span: u8) {
        self.vpns[i] = key.vpn.0;
        self.keys[i] = key;
        self.ppns[i] = ppn;
        self.last_use[i] = tick;
        self.tmasks[i] = tmask;
        self.spans[i] = span;
        self.valid |= 1 << i;
    }

    /// The translation forwarded when way `i` is displaced: the full
    /// key, or under sub-entry sharing the canonical key retagged with
    /// its lowest-numbered sharer ([`tenancy::representative`]). A
    /// coalesced way forwards its whole span — the Fig-12 fill flow
    /// moves the covered run downstream in one entry.
    fn victim(&self, i: usize, sub: bool) -> Translation {
        let key =
            if sub { tenancy::representative(self.keys[i], self.tmasks[i]) } else { self.keys[i] };
        Translation::with_span(key, self.ppns[i], self.spans[i])
    }

    fn resident(&self) -> usize {
        self.valid.count_ones() as usize
    }

    fn drop_all_tx(&mut self) -> usize {
        let n = self.resident();
        self.valid = 0;
        self.tags.clear();
        n
    }
}

/// Iterates the set-bit positions of an occupancy mask in ascending
/// (slot) order, matching the scan order of the pre-SoA slot vector.
fn ones(mask: u32) -> impl Iterator<Item = usize> {
    (0..u32::BITS as usize).filter(move |i| mask & (1 << i) != 0)
}

/// Outcome of a translation insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdsInsert {
    /// Stored; `evicted` holds a displaced translation that must
    /// continue down the fill flow (Fig 12 flow ❶→❷→❹→❻).
    Inserted {
        /// Victim displaced by this insert, if any.
        evicted: Option<Translation>,
    },
    /// The segment is in App mode — the candidate bypasses the LDS
    /// (Fig 12 flow ❶→❷→❸→❺).
    Bypassed,
}

/// Statistics of one CU's reconfigurable LDS.
#[derive(Debug, Clone, Default)]
pub struct TxLdsStats {
    /// Lookup hits/misses (misses include App-mode segments).
    pub lookups: HitMiss,
    /// Successful inserts.
    pub inserts: u64,
    /// Inserts bypassed because the segment was App-mode.
    pub bypassed: u64,
    /// Translations evicted by newer translations.
    pub evictions: u64,
    /// Translations dropped when an app allocation overwrote their
    /// segment.
    pub overwritten_by_app: u64,
    /// Base-delta compression conflicts on insert.
    pub compression_conflicts: u64,
    /// Translations silently dropped during conflict re-basing (only
    /// one victim can be forwarded per insert).
    pub conflict_drops: u64,
    /// Shootdown invalidations that found an entry.
    pub shootdowns: u64,
    /// Coalesced-entry counters (all zero with coalescing off). Here
    /// `splits` counts covering ways conservatively *dropped* whole by
    /// a single-page shootdown — a victim cache holds clean copies, so
    /// dropping the run is always safe and needs no buddy bookkeeping.
    pub coalescing: CoalescingCounters,
}

/// One CU's reconfigurable LDS.
///
/// # Example
///
/// ```
/// use gtr_core::lds_tx::{LdsInsert, TxLds};
/// use gtr_core::config::SegmentSize;
/// use gtr_vm::addr::{Ppn, Translation, TranslationKey, Vpn};
///
/// let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
/// let tx = Translation::new(TranslationKey::for_vpn(Vpn(7)), Ppn(70));
/// assert!(matches!(lds.insert(tx), LdsInsert::Inserted { evicted: None }));
/// assert_eq!(lds.lookup(tx.key), Some(tx)); // copy promoted to the L1 TLB
/// assert_eq!(lds.lookup(tx.key), Some(tx)); // entry stays resident
/// ```
#[derive(Debug, Clone)]
pub struct TxLds {
    segments: Vec<Segment>,
    segment_bytes: u32,
    ways: usize,
    /// VPN bits consumed by home-node selection before segment
    /// indexing (0 unless home hashing distributes VPNs across CUs; see
    /// `ReachConfig::lds_home_hashing`). Without the shift, a home LDS
    /// would only ever see VPNs congruent to its CU id and leave 7/8 of
    /// its segments idle.
    index_shift: u32,
    /// Capacity-sharing policy between concurrent tenants; `None`
    /// (the default) is bit-identical to the untenanted structure.
    tenancy: Option<TenancyConfig>,
    /// Coalesced (variable-reach) ways: `Some(max)` lets one way map up
    /// to `2^max` contiguous pages; `None` is the classic
    /// one-page-per-way default.
    coalescing: Option<u8>,
    tick: u64,
    stats: TxLdsStats,
}

impl TxLds {
    /// Creates a reconfigurable LDS over `lds_bytes` of scratchpad.
    ///
    /// # Panics
    ///
    /// Panics if `lds_bytes` is not a multiple of the segment size.
    pub fn new(lds_bytes: u32, segment_size: SegmentSize) -> Self {
        let seg = segment_size.bytes();
        assert!(lds_bytes.is_multiple_of(seg), "LDS must divide into segments");
        let count = (lds_bytes / seg) as usize;
        assert!(segment_size.ways() <= MAX_WAYS, "segment ways exceed SoA lanes");
        Self {
            segments: (0..count).map(|_| Segment::new()).collect(),
            segment_bytes: seg,
            ways: segment_size.ways(),
            index_shift: 0,
            tenancy: None,
            coalescing: None,
            tick: 0,
            stats: TxLdsStats::default(),
        }
    }

    /// Enables coalesced (variable-reach) ways: one way may hold a
    /// run of up to `2^max_span_log2` contiguous pages (arXiv
    /// 2110.08613), mirroring [`gtr_vm::tlb::Tlb::set_coalescing`].
    /// Must be called while no translations are resident.
    ///
    /// # Panics
    ///
    /// Panics if any translation is already resident.
    pub fn set_coalescing(&mut self, max_span_log2: Option<u8>) {
        assert!(self.resident() == 0, "coalescing must be set before first insert");
        self.coalescing = max_span_log2;
    }

    /// Installs a tenancy policy (TENANCY.md §3). Must be called while
    /// the structure holds no translations, so every resident entry
    /// was inserted under one consistent tagging scheme.
    ///
    /// # Panics
    ///
    /// Panics if any translation is already resident.
    pub fn set_tenancy(&mut self, tenancy: TenancyConfig) {
        assert!(self.resident() == 0, "tenancy policy must be set before first insert");
        self.tenancy = Some(tenancy);
    }

    fn sub_entry(&self) -> bool {
        self.tenancy.is_some_and(|t| t.sub_entry())
    }

    /// The key stored in the tag lanes: canonical (VM-ID-zeroed) under
    /// sub-entry sharing, the full key otherwise.
    fn store_key(&self, key: TranslationKey) -> TranslationKey {
        if self.sub_entry() { tenancy::canonical(key) } else { key }
    }

    /// Sets the number of low VPN bits to skip before segment indexing
    /// (used with home-node hashing so a home LDS spreads its share of
    /// the VPN space across all of its segments).
    pub fn with_index_shift(mut self, shift: u32) -> Self {
        self.index_shift = shift;
        self
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Translation ways per segment.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn index(&self, key: TranslationKey) -> usize {
        let vpn = (key.vpn.0 >> self.index_shift) as usize;
        match self.tenancy {
            // Partitioned: tenant `t` owns the segment stripe ≡ `t`
            // (mod tenants); any remainder segments when the count does
            // not divide go unused (they are nobody's quota).
            Some(t) if t.partitioned() => {
                let tenants = t.tenants as usize;
                let per = (self.segments.len() / tenants).max(1);
                ((vpn % per) * tenants + key.vmid.raw() as usize) % self.segments.len()
            }
            _ => vpn % self.segments.len(),
        }
    }

    fn tag(&self, key: TranslationKey) -> u64 {
        (key.vpn.0 >> self.index_shift) / self.segments.len() as u64
    }

    /// Mode of the segment a key maps to (drives the Fig 12 routing).
    pub fn segment_mode(&self, key: TranslationKey) -> SegmentMode {
        self.segments[self.index(key)].mode
    }

    /// Whether a lookup for `key` could possibly hit: the key's own
    /// segment is Tx, or — under coalescing — any span-base segment is
    /// (a wide entry lives in its *base* VPN's segment, which can
    /// differ from the probed page's). This is the Fig-12 routing gate
    /// the system charges LDS lookup latency against; with coalescing
    /// off it is exactly the classic `segment_mode(key) == Tx` test.
    pub fn may_hold(&self, key: TranslationKey) -> bool {
        if self.segments[self.index(key)].mode == SegmentMode::Tx {
            return true;
        }
        let Some(max) = self.coalescing else { return false };
        let mut prev = key.vpn.0;
        for k in 1..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1);
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            if self.segments[self.index(bkey)].mode == SegmentMode::Tx {
                return true;
            }
        }
        false
    }

    /// Looks up a translation. A hit refreshes the entry's LRU
    /// position and returns a copy for promotion into the L1 TLB; the
    /// entry itself stays resident (translations are clean, so
    /// duplication between the LDS and a TLB is harmless — the same
    /// duplication the per-CU L1 TLBs already exhibit, Fig 14a).
    ///
    /// Under coalescing a miss on the exact key falls back to probing
    /// the masked base of every span level and hits iff a resident
    /// way's span covers `key`; the hit returns the base-normalized
    /// run entry (callers derive the page's frame via
    /// [`Translation::ppn_for`]).
    pub fn lookup(&mut self, key: TranslationKey) -> Option<Translation> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        let max = self.coalescing.unwrap_or(0);
        let mut prev = u64::MAX;
        for k in 0..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1); // k=0: the exact key
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let idx = self.index(bkey);
            let skey = self.store_key(bkey);
            let seg = &mut self.segments[idx];
            if seg.mode != SegmentMode::Tx {
                continue;
            }
            // A sub-entry hit needs the requester's valid-mask bit on
            // top of the canonical tag match; a bare tag match without
            // the bit misses (and does not refresh LRU — the requester
            // holds no stake in the entry yet). A covering match must
            // additionally reach the probed page.
            if let Some(i) = seg.find(ways, skey) {
                if (sub && seg.tmasks[i] & bit == 0) || key.vpn.0 - bvpn >= (1u64 << seg.spans[i])
                {
                    continue;
                }
                seg.last_use[i] = tick;
                let hit_key =
                    if sub { TranslationKey { vpn: Vpn(bvpn), ..key } } else { seg.keys[i] };
                let hit = Translation::with_span(hit_key, seg.ppns[i], seg.spans[i]);
                self.stats.lookups.hit();
                if k > 0 {
                    self.stats.coalescing.hits += 1;
                }
                return Some(hit);
            }
        }
        self.stats.lookups.miss();
        None
    }

    /// Inserts an L1-TLB victim (Fig 12 flows ❶→❷→…). A coalesced
    /// victim occupies one way covering its whole span.
    pub fn insert(&mut self, tx: Translation) -> LdsInsert {
        let r = self.insert_inner(tx);
        if self.coalescing.is_some() && !matches!(r, LdsInsert::Bypassed) {
            self.stats.coalescing.inserts += 1;
            self.stats.coalescing.span_pages += 1u64 << tx.span_log2;
            if tx.span_log2 > 0 {
                self.stats.coalescing.coalesced += 1;
            }
        }
        r
    }

    fn insert_inner(&mut self, tx: Translation) -> LdsInsert {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.index(tx.key);
        let tag = self.tag(tx.key);
        let ways = self.ways;
        let skey = self.store_key(tx.key);
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(tx.key.vmid);
        let seg = &mut self.segments[idx];
        match seg.mode {
            SegmentMode::App => {
                self.stats.bypassed += 1;
                LdsInsert::Bypassed
            }
            SegmentMode::Idle => {
                seg.mode = SegmentMode::Tx;
                seg.tags.clear();
                assert!(seg.tags.try_admit(tag), "empty group admits");
                seg.set(0, skey, tx.ppn, tick, bit, tx.span_log2);
                self.stats.inserts += 1;
                LdsInsert::Inserted { evicted: None }
            }
            SegmentMode::Tx => {
                // Refresh on re-insert of the same key; under sub-entry
                // sharing a PPN-matching insert *merges* (the tenant
                // joins the way's valid mask, arXiv 2404.18361 §4)
                // while a PPN conflict rebases the way to the inserting
                // tenant alone — the old sharers' mapping is stale.
                if let Some(i) = seg.find(ways, skey) {
                    if sub && seg.ppns[i] == tx.ppn {
                        seg.tmasks[i] |= bit;
                    } else {
                        if sub {
                            seg.tmasks[i] = bit;
                        }
                        seg.ppns[i] = tx.ppn;
                    }
                    // The refresh's span wins (the newest walk knows
                    // best whether the run widened or narrowed).
                    seg.spans[i] = tx.span_log2;
                    seg.last_use[i] = tick;
                    self.stats.inserts += 1;
                    return LdsInsert::Inserted { evicted: None };
                }
                let mut evicted = None;
                if !seg.tags.fits(tag) {
                    // Compression conflict: the residents' base cannot
                    // express the new tag. Evict everything and re-base;
                    // only the most-recently-used victim is forwarded.
                    self.stats.compression_conflicts += 1;
                    let mru =
                        ones(seg.valid).max_by_key(|&i| seg.last_use[i]).map(|i| seg.victim(i, sub));
                    let dropped = seg.drop_all_tx();
                    self.stats.evictions += dropped as u64;
                    self.stats.conflict_drops += dropped.saturating_sub(1) as u64;
                    evicted = mru;
                } else if seg.resident() == ways {
                    // Set full: evict the LRU way.
                    let i = ones(seg.valid)
                        .min_by_key(|&i| seg.last_use[i])
                        .expect("full segment non-empty");
                    evicted = Some(seg.victim(i, sub));
                    seg.valid &= !(1 << i);
                    seg.tags.retire();
                    self.stats.evictions += 1;
                }
                assert!(seg.tags.try_admit(tag), "tag checked to fit");
                let free = (!seg.valid).trailing_zeros() as usize;
                debug_assert!(free < ways, "a slot was freed or available");
                seg.set(free, skey, tx.ppn, tick, bit, tx.span_log2);
                self.stats.inserts += 1;
                LdsInsert::Inserted { evicted }
            }
        }
    }

    /// A workgroup allocation claimed `[base, base+size)`: covered
    /// segments switch to App mode, dropping any translations
    /// (overwrite without data movement, §4.2.3).
    pub fn on_app_allocate(&mut self, base: u32, size: u32) {
        for i in self.covered(base, size) {
            let seg = &mut self.segments[i];
            if seg.mode == SegmentMode::Tx {
                self.stats.overwritten_by_app += seg.drop_all_tx() as u64;
            }
            seg.mode = SegmentMode::App;
        }
    }

    /// A workgroup allocation over `[base, base+size)` was released:
    /// covered segments become Idle.
    pub fn on_app_release(&mut self, base: u32, size: u32) {
        for i in self.covered(base, size) {
            let seg = &mut self.segments[i];
            debug_assert_ne!(seg.mode, SegmentMode::Tx, "Tx can never overwrite App");
            seg.valid = 0;
            seg.tags.clear();
            seg.mode = SegmentMode::Idle;
        }
    }

    fn covered(&self, base: u32, size: u32) -> std::ops::Range<usize> {
        if size == 0 {
            return 0..0;
        }
        let first = (base / self.segment_bytes) as usize;
        let last = ((base + size - 1) / self.segment_bytes) as usize + 1;
        first..last.min(self.segments.len())
    }

    /// Shootdown: invalidates `key` if present; returns whether it was.
    ///
    /// Under sub-entry sharing only the shooting tenant's valid-mask
    /// bit is cleared; the way survives for its co-sharers and is
    /// freed only when the mask empties (arXiv 2404.18361 §4.3).
    ///
    /// Under coalescing every way whose span covers `key` is dropped
    /// *whole* — unlike the TLB's buddy split, a victim cache holds
    /// clean copies, so conservatively losing the run's other pages is
    /// always safe and needs no fragment bookkeeping (they refill on
    /// the next walk).
    pub fn shootdown(&mut self, key: TranslationKey) -> bool {
        let Some(max) = self.coalescing else { return self.shootdown_exact(key) };
        let ways = self.ways;
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        let mut any = false;
        let mut prev = u64::MAX;
        for k in 0..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1); // k=0: the exact key
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let idx = self.index(bkey);
            let skey = self.store_key(bkey);
            let span;
            {
                let seg = &mut self.segments[idx];
                if seg.mode != SegmentMode::Tx {
                    continue;
                }
                let Some(i) = seg.find(ways, skey) else { continue };
                if key.vpn.0 - bvpn >= (1u64 << seg.spans[i]) {
                    continue; // resident way does not reach the shot page
                }
                span = seg.spans[i];
                if sub {
                    if seg.tmasks[i] & bit == 0 {
                        continue;
                    }
                    seg.tmasks[i] &= !bit;
                    if seg.tmasks[i] == 0 {
                        seg.valid &= !(1 << i);
                        seg.tags.retire();
                    }
                } else {
                    seg.valid &= !(1 << i);
                    seg.tags.retire();
                }
            }
            self.stats.shootdowns += 1;
            if span > 0 {
                self.stats.coalescing.splits += 1;
            }
            any = true;
        }
        any
    }

    /// The classic (non-coalescing) shootdown path, byte-identical to
    /// the pre-coalescing behavior.
    fn shootdown_exact(&mut self, key: TranslationKey) -> bool {
        let idx = self.index(key);
        let ways = self.ways;
        let skey = self.store_key(key);
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        let seg = &mut self.segments[idx];
        if seg.mode != SegmentMode::Tx {
            return false;
        }
        if let Some(i) = seg.find(ways, skey) {
            if sub {
                if seg.tmasks[i] & bit == 0 {
                    return false;
                }
                seg.tmasks[i] &= !bit;
                self.stats.shootdowns += 1;
                if seg.tmasks[i] == 0 {
                    seg.valid &= !(1 << i);
                    seg.tags.retire();
                }
                return true;
            }
            seg.valid &= !(1 << i);
            seg.tags.retire();
            self.stats.shootdowns += 1;
            true
        } else {
            false
        }
    }

    /// Drops every translation visible to `vmid` (tenant teardown /
    /// churn); returns the number of visibility losses. Under
    /// sub-entry sharing this clears the tenant's bit across all ways,
    /// freeing only ways whose mask empties.
    pub fn invalidate_vmid(&mut self, vmid: VmId) -> usize {
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(vmid);
        let mut lost = 0;
        for seg in &mut self.segments {
            if seg.mode != SegmentMode::Tx {
                continue;
            }
            for i in ones(seg.valid) {
                if sub {
                    if seg.tmasks[i] & bit != 0 {
                        seg.tmasks[i] &= !bit;
                        lost += 1;
                        if seg.tmasks[i] == 0 {
                            seg.valid &= !(1 << i);
                            seg.tags.retire();
                        }
                    }
                } else if seg.keys[i].vmid == vmid {
                    seg.valid &= !(1 << i);
                    seg.tags.retire();
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Translations currently resident (Fig 15's "entries gained").
    pub fn resident(&self) -> usize {
        self.segments.iter().map(Segment::resident).sum()
    }

    /// Segments currently in each mode `(idle, app, tx)`.
    pub fn mode_census(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.segments {
            match s.mode {
                SegmentMode::Idle => c.0 += 1,
                SegmentMode::App => c.1 += 1,
                SegmentMode::Tx => c.2 += 1,
            }
        }
        c
    }

    /// Iterates over resident translations (Fig 14a sharing analysis).
    ///
    /// Under sub-entry sharing each way expands to one translation per
    /// set mask bit, with the canonical key retagged by that sharer's
    /// VM-ID — so coherence checks can validate the mapping against
    /// every sharing tenant's page table.
    /// A coalesced way expands to one logical single-page translation
    /// per covered page, so coherence checks validate the run
    /// arithmetic against the page table page by page.
    pub fn iter(&self) -> impl Iterator<Item = Translation> + '_ {
        let sub = self.sub_entry();
        self.segments.iter().filter(|s| s.mode == SegmentMode::Tx).flat_map(move |s| {
            ones(s.valid).flat_map(move |i| {
                let (key, ppn, span) = (s.keys[i], s.ppns[i], s.spans[i]);
                let mask = if sub { s.tmasks[i] } else { 1 << key.vmid.raw() };
                (0..(1u64 << span)).flat_map(move |o| {
                    (0..MAX_TENANTS as u8).filter(move |b| mask & (1u8 << b) != 0).map(
                        move |b| {
                            let vpn = Vpn(key.vpn.0 + o);
                            let k = if sub {
                                TranslationKey { vpn, vmid: VmId::new(b), ..key }
                            } else {
                                TranslationKey { vpn, ..key }
                            };
                            Translation::new(k, Ppn(ppn.0 + o))
                        },
                    )
                })
            })
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TxLdsStats {
        &self.stats
    }

    /// Zeroes the statistics while keeping resident translations
    /// (checkpoint restore re-baselines measurement on warm state).
    pub fn reset_stats(&mut self) {
        self.stats = TxLdsStats::default();
    }

    /// Drops every translation (used between independent runs).
    pub fn clear_tx(&mut self) {
        for seg in &mut self.segments {
            if seg.mode == SegmentMode::Tx {
                seg.drop_all_tx();
                seg.mode = SegmentMode::Idle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_vm::addr::Vpn;

    fn tx(v: u64) -> Translation {
        Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v + 1))
    }

    fn lds() -> TxLds {
        TxLds::new(16 * 1024, SegmentSize::Bytes32)
    }

    #[test]
    fn geometry_matches_paper() {
        let l = lds();
        assert_eq!(l.segment_count(), 512); // 16 KB / 32 B
        assert_eq!(l.ways(), 3);
        // 512 segments × 3 ways = 1536 entries per CU; ×8 CUs = 12 K
        // (Fig 15: "12K from LDS").
        assert_eq!(l.segment_count() * l.ways(), 1536);
    }

    #[test]
    fn insert_lookup_promote_cycle() {
        let mut l = lds();
        let t = tx(42);
        assert_eq!(l.insert(t), LdsInsert::Inserted { evicted: None });
        assert_eq!(l.resident(), 1);
        assert_eq!(l.lookup(t.key), Some(t));
        assert_eq!(l.resident(), 1, "hit copies out; the entry stays");
        assert_eq!(l.lookup(t.key), Some(t), "still resident");
        assert_eq!(l.stats().lookups.hits, 2);
    }

    #[test]
    fn lookup_refreshes_lru() {
        let mut l = lds();
        let n = l.segment_count() as u64;
        let v = |i: u64| tx(5 + i * n);
        l.insert(v(0));
        l.insert(v(1));
        l.insert(v(2));
        l.lookup(v(0).key); // v(0) becomes MRU; LRU is v(1)
        match l.insert(v(3)) {
            LdsInsert::Inserted { evicted: Some(e) } => assert_eq!(e.key, v(1).key),
            other => panic!("expected eviction of v1: {other:?}"),
        }
    }

    #[test]
    fn three_way_associativity_with_lru() {
        let mut l = lds();
        let n = l.segment_count() as u64;
        // Four VPNs mapping to segment 5.
        let v = |i: u64| tx(5 + i * n);
        l.insert(v(0));
        l.insert(v(1));
        l.insert(v(2));
        assert_eq!(l.resident(), 3);
        // LRU is v(0); inserting v(3) evicts it.
        match l.insert(v(3)) {
            LdsInsert::Inserted { evicted: Some(e) } => assert_eq!(e.key, v(0).key),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(l.resident(), 3);
    }

    #[test]
    fn app_mode_bypasses_and_drops() {
        let mut l = lds();
        let t = tx(3);
        l.insert(t);
        // Allocation covering segment 3 (bytes [96,128)).
        l.on_app_allocate(0, 256); // segments 0..8
        assert_eq!(l.resident(), 0, "app overwrite drops translations");
        assert_eq!(l.stats().overwritten_by_app, 1);
        assert_eq!(l.insert(t), LdsInsert::Bypassed);
        assert_eq!(l.segment_mode(t.key), SegmentMode::App);
        // Release frees the capacity again.
        l.on_app_release(0, 256);
        assert!(matches!(l.insert(t), LdsInsert::Inserted { .. }));
    }

    #[test]
    fn compression_conflict_evicts_and_rebases() {
        let mut l = lds();
        let n = l.segment_count() as u64;
        // Tags 0 and 1 coexist; tag 1<<20 cannot (16-bit delta).
        l.insert(tx(7));
        l.insert(tx(7 + n));
        let far = tx(7 + (1 << 20) * n);
        match l.insert(far) {
            LdsInsert::Inserted { evicted: Some(_) } => {}
            other => panic!("conflict should evict and forward one victim: {other:?}"),
        }
        assert_eq!(l.stats().compression_conflicts, 1);
        assert_eq!(l.resident(), 1);
        assert_eq!(l.lookup(far.key), Some(far));
    }

    #[test]
    fn reinsert_refreshes_ppn() {
        let mut l = lds();
        let k = TranslationKey::for_vpn(Vpn(9));
        l.insert(Translation::new(k, Ppn(1)));
        l.insert(Translation::new(k, Ppn(2)));
        assert_eq!(l.resident(), 1);
        assert_eq!(l.lookup(k).unwrap().ppn, Ppn(2));
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut l = lds();
        let t = tx(11);
        l.insert(t);
        assert!(l.shootdown(t.key));
        assert!(!l.shootdown(t.key));
        assert_eq!(l.lookup(t.key), None);
        assert_eq!(l.stats().shootdowns, 1);
    }

    #[test]
    fn mode_census_and_clear() {
        let mut l = lds();
        l.insert(tx(0));
        l.on_app_allocate(512, 512);
        let (_idle, app, txm) = l.mode_census();
        assert_eq!(app, 16); // 512 bytes / 32
        assert_eq!(txm, 1);
        l.clear_tx();
        let (_, app2, tx2) = l.mode_census();
        assert_eq!(app2, 16, "clear_tx leaves app segments");
        assert_eq!(tx2, 0);
    }

    #[test]
    fn index_shift_spreads_strided_vpns() {
        // VPNs all ≡ 3 (mod 8), as a home LDS sees under home hashing.
        let mut plain = lds();
        let mut shifted = TxLds::new(16 * 1024, SegmentSize::Bytes32).with_index_shift(3);
        for i in 0..512u64 {
            plain.insert(tx(3 + i * 8));
            shifted.insert(tx(3 + i * 8));
        }
        assert!(plain.resident() < 256, "unshifted: 7/8 of segments unused");
        assert_eq!(shifted.resident(), 512, "shifted: every VPN gets a slot");
        assert_eq!(shifted.lookup(tx(3).key), Some(tx(3)));
    }

    #[test]
    fn sixty_four_byte_segments_double_ways() {
        let l = TxLds::new(16 * 1024, SegmentSize::Bytes64);
        assert_eq!(l.segment_count(), 256);
        assert_eq!(l.ways(), 6);
        // Same total capacity in entries.
        assert_eq!(l.segment_count() * l.ways(), 1536);
    }

    #[test]
    fn sriov_identities_do_not_alias() {
        use gtr_vm::addr::{VmId, VrfId};
        let mut l = lds();
        let mk = |vm: u8, vrf: u8| TranslationKey {
            vpn: Vpn(7),
            vmid: VmId::new(vm),
            vrf: VrfId::new(vrf),
        };
        l.insert(Translation::new(mk(0, 0), Ppn(1)));
        l.insert(Translation::new(mk(1, 1), Ppn(2)));
        assert_eq!(l.lookup(mk(0, 0)).unwrap().ppn, Ppn(1));
        assert_eq!(l.lookup(mk(1, 1)).unwrap().ppn, Ppn(2));
        assert_eq!(l.lookup(mk(1, 0)), None, "unseen identity must miss");
        assert!(l.shootdown(mk(0, 0)));
        assert_eq!(l.lookup(mk(0, 0)), None);
        assert!(l.lookup(mk(1, 1)).is_some(), "other identity survives");
    }

    #[test]
    fn iter_reports_residents() {
        let mut l = lds();
        l.insert(tx(1));
        l.insert(tx(2));
        assert_eq!(l.iter().count(), 2);
    }

    mod tenancy {
        use super::*;
        use gtr_vm::addr::VmId;
        use gtr_vm::tenancy::{SharingPolicy, TenancyConfig};

        fn keyed(v: u64, vm: u8) -> Translation {
            let key = TranslationKey {
                vpn: Vpn(v),
                vmid: VmId::new(vm),
                vrf: gtr_vm::addr::VrfId::new(0),
            };
            Translation::new(key, Ppn(v + 1))
        }

        fn tenanted(policy: SharingPolicy, tenants: u8) -> TxLds {
            let mut l = lds();
            l.set_tenancy(TenancyConfig::new(tenants, policy));
            l
        }

        #[test]
        fn partitioned_stripes_segments_by_tenant() {
            let mut l = tenanted(SharingPolicy::Partitioned, 2);
            // Same VPN, two tenants: the stripe remap must land them in
            // different segments, so neither can evict the other.
            l.insert(keyed(7, 0));
            l.insert(keyed(7, 1));
            assert_eq!(l.resident(), 2);
            assert_eq!(l.lookup(keyed(7, 0).key), Some(keyed(7, 0)));
            assert_eq!(l.lookup(keyed(7, 1).key), Some(keyed(7, 1)));
            // Fill tenant 0's segment to overflow: victims must all be
            // tenant 0's own translations.
            let per = l.segment_count() / 2;
            for i in 0..8u64 {
                if let LdsInsert::Inserted { evicted: Some(e) } =
                    l.insert(keyed(7 + i * per as u64, 0))
                {
                    assert_eq!(e.key.vmid.raw(), 0, "no cross-tenant eviction");
                }
            }
            assert!(l.lookup(keyed(7, 1).key).is_some(), "tenant 1 untouched");
        }

        #[test]
        fn shared_policy_checks_vmid_on_hit() {
            let mut l = tenanted(SharingPolicy::Shared, 2);
            l.insert(keyed(3, 0));
            assert!(l.lookup(keyed(3, 0).key).is_some());
            assert!(l.lookup(keyed(3, 1).key).is_none(), "foreign vmid must miss");
        }

        #[test]
        fn sub_entry_merges_on_ppn_match() {
            let mut l = tenanted(SharingPolicy::SubEntry, 2);
            let k0 = keyed(5, 0).key;
            let k1 = keyed(5, 1).key;
            l.insert(Translation::new(k0, Ppn(42)));
            l.insert(Translation::new(k1, Ppn(42)));
            assert_eq!(l.resident(), 1, "PPN-matching tenants share one way");
            assert_eq!(l.lookup(k0), Some(Translation::new(k0, Ppn(42))));
            assert_eq!(l.lookup(k1), Some(Translation::new(k1, Ppn(42))));
            assert_eq!(l.iter().count(), 2, "iter expands one entry per sharer");
        }

        #[test]
        fn sub_entry_ppn_conflict_rebases() {
            let mut l = tenanted(SharingPolicy::SubEntry, 2);
            let k0 = keyed(5, 0).key;
            let k1 = keyed(5, 1).key;
            l.insert(Translation::new(k0, Ppn(42)));
            l.insert(Translation::new(k1, Ppn(99)));
            assert_eq!(l.resident(), 1);
            assert!(l.lookup(k0).is_none(), "stale sharer evicted from the mask");
            assert_eq!(l.lookup(k1), Some(Translation::new(k1, Ppn(99))));
        }

        #[test]
        fn sub_entry_shootdown_clears_one_bit() {
            let mut l = tenanted(SharingPolicy::SubEntry, 2);
            let k0 = keyed(5, 0).key;
            let k1 = keyed(5, 1).key;
            l.insert(Translation::new(k0, Ppn(42)));
            l.insert(Translation::new(k1, Ppn(42)));
            assert!(l.shootdown(k0));
            assert!(l.lookup(k0).is_none());
            assert!(l.lookup(k1).is_some(), "co-sharer survives the shootdown");
            assert!(!l.shootdown(k0), "bit already clear");
            assert!(l.shootdown(k1));
            assert_eq!(l.resident(), 0, "entry dies when its mask empties");
        }

        #[test]
        fn sub_entry_victim_carries_representative_vmid() {
            let mut l = tenanted(SharingPolicy::SubEntry, 2);
            let n = l.segment_count() as u64;
            let seg5 = |i: u64, vm: u8| keyed(5 + i * n, vm);
            // One shared way (tenants 0+1) plus two singles fills the set.
            l.insert(Translation::new(seg5(0, 0).key, Ppn(42)));
            l.insert(Translation::new(seg5(0, 1).key, Ppn(42)));
            l.insert(seg5(1, 0));
            l.insert(seg5(2, 0));
            // Next insert evicts the LRU (the shared way): forwarded on
            // behalf of its lowest sharer, tenant 0.
            match l.insert(seg5(3, 1)) {
                LdsInsert::Inserted { evicted: Some(e) } => {
                    assert_eq!(e.key.vpn, Vpn(5));
                    assert_eq!(e.key.vmid.raw(), 0, "lowest-numbered sharer");
                }
                other => panic!("expected eviction: {other:?}"),
            }
        }

        #[test]
        fn invalidate_vmid_counts_visibility_losses() {
            let mut l = tenanted(SharingPolicy::SubEntry, 2);
            l.insert(Translation::new(keyed(5, 0).key, Ppn(42)));
            l.insert(Translation::new(keyed(5, 1).key, Ppn(42)));
            l.insert(keyed(9, 0));
            assert_eq!(l.invalidate_vmid(VmId::new(0)), 2);
            assert_eq!(l.resident(), 1, "shared way survives for tenant 1");
            assert!(l.lookup(keyed(5, 1).key).is_some());
        }

        #[test]
        fn single_tenant_shared_matches_untenanted() {
            let mut plain = lds();
            let mut shared = tenanted(SharingPolicy::Shared, 1);
            for i in 0..2048u64 {
                assert_eq!(plain.insert(tx(i * 3)), shared.insert(tx(i * 3)));
                assert_eq!(plain.lookup(tx(i).key), shared.lookup(tx(i).key));
            }
            assert_eq!(plain.resident(), shared.resident());
            assert_eq!(plain.stats().evictions, shared.stats().evictions);
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn set_tenancy_rejects_warm_structure() {
            let mut l = lds();
            l.insert(tx(1));
            l.set_tenancy(TenancyConfig::new(2, SharingPolicy::Shared));
        }
    }

    mod coalescing {
        use super::*;

        fn co_lds(max: u8) -> TxLds {
            let mut l = lds();
            l.set_coalescing(Some(max));
            l
        }

        /// One span-3 run: vpns 40..48 -> ppns 500..508.
        fn span3() -> Translation {
            Translation::with_span(TranslationKey::for_vpn(Vpn(40)), Ppn(500), 3)
        }

        fn key(v: u64) -> TranslationKey {
            TranslationKey::for_vpn(Vpn(v))
        }

        #[test]
        fn covered_pages_hit_through_base_segment() {
            let mut l = co_lds(4);
            l.insert(span3());
            assert_eq!(l.resident(), 1, "one way holds the whole run");
            for v in 40..48u64 {
                assert!(l.may_hold(key(v)), "routing gate must see the run at vpn {v}");
                let hit = l.lookup(key(v)).expect("covered page must hit");
                assert_eq!(hit.key.vpn, Vpn(40));
                assert_eq!(hit.ppn_for(Vpn(v)), Ppn(500 + (v - 40)));
            }
            assert!(l.lookup(key(48)).is_none());
            assert_eq!(l.stats().lookups.hits, 8);
            assert_eq!(l.stats().coalescing.hits, 7, "exact-base hit is not a covering hit");
        }

        #[test]
        fn insert_counters_measure_reach() {
            let mut l = co_lds(4);
            l.insert(span3());
            l.insert(tx(100));
            let co = l.stats().coalescing;
            assert_eq!(co.inserts, 2);
            assert_eq!(co.coalesced, 1);
            assert_eq!(co.span_pages, 9);
        }

        #[test]
        fn bypassed_inserts_do_not_count_reach() {
            let mut l = co_lds(4);
            l.on_app_allocate(0, 16 * 1024); // every segment App
            assert_eq!(l.insert(span3()), LdsInsert::Bypassed);
            assert_eq!(l.stats().coalescing, CoalescingCounters::default());
        }

        #[test]
        fn shootdown_drops_the_whole_covering_way() {
            let mut l = co_lds(4);
            l.insert(span3());
            assert!(l.shootdown(key(42)));
            for v in 40..48u64 {
                assert!(l.lookup(key(v)).is_none(), "victim caches drop the run whole ({v})");
            }
            assert_eq!(l.resident(), 0);
            assert_eq!(l.stats().coalescing.splits, 1);
            assert!(!l.shootdown(key(42)));
        }

        #[test]
        fn iter_expands_covered_pages() {
            let mut l = co_lds(4);
            l.insert(span3());
            let pages: Vec<(u64, u64)> = l.iter().map(|e| (e.key.vpn.0, e.ppn.0)).collect();
            assert_eq!(pages.len(), 8);
            for (vpn, ppn) in pages {
                assert_eq!(ppn - 500, vpn - 40);
            }
        }

        #[test]
        fn victims_keep_their_span() {
            let mut l = co_lds(4);
            let n = l.segment_count() as u64;
            // Fill the base segment of vpn 40 with three runs, then a
            // fourth insert to the same segment evicts the LRU run.
            let run = |i: u64| {
                Translation::with_span(TranslationKey::for_vpn(Vpn(40 + i * 8 * n)), Ppn(500), 3)
            };
            l.insert(run(0));
            l.insert(run(1));
            l.insert(run(2));
            match l.insert(run(3)) {
                LdsInsert::Inserted { evicted: Some(e) } => {
                    assert_eq!(e.key, run(0).key);
                    assert_eq!(e.span_log2, 3, "Fig-12 victims carry the whole run");
                }
                other => panic!("expected eviction: {other:?}"),
            }
        }

        #[test]
        fn may_hold_matches_old_gate_when_off() {
            let mut l = lds();
            l.insert(tx(7));
            for v in 0..64u64 {
                assert_eq!(
                    l.may_hold(key(v)),
                    l.segment_mode(key(v)) == SegmentMode::Tx,
                    "vpn {v}"
                );
            }
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn set_coalescing_rejects_warm_structure() {
            let mut l = lds();
            l.insert(tx(1));
            l.set_coalescing(Some(4));
        }
    }
}
