//! Synthetic power-law graph in CSR form, backing the BFS/SSSP/PRK
//! models.

use gtr_sim::rng::SplitMix64;

use crate::gen::PAGE;

/// A CSR graph with virtual-address layout information.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
    /// `row_ptr[v]` = first edge index of `v` (length `vertices + 1`).
    pub row_ptr: Vec<u64>,
    /// Destination vertex per edge.
    pub col_idx: Vec<u32>,
    /// VA base of the row-pointer array.
    pub row_ptr_base: u64,
    /// VA base of the edge (column-index) array.
    pub edges_base: u64,
    /// VA base of per-vertex property arrays (levels/distances/ranks).
    pub props_base: u64,
}

impl CsrGraph {
    /// Generates a graph with a heavy-tailed degree distribution:
    /// most vertices get `2..base_degree` edges, a few percent become
    /// hubs with up to `32 * base_degree`.
    pub fn generate(seed: u64, vertices: u64, base_degree: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x67_7261_7068u64);
        let mut row_ptr = Vec::with_capacity(vertices as usize + 1);
        row_ptr.push(0u64);
        let mut degrees = Vec::with_capacity(vertices as usize);
        for _ in 0..vertices {
            let deg = if rng.chance(0.02) {
                base_degree * (2 + rng.next_below(31))
            } else {
                2 + rng.next_below(base_degree.max(1))
            };
            degrees.push(deg);
            row_ptr.push(row_ptr.last().unwrap() + deg);
        }
        let edges = *row_ptr.last().unwrap();
        let mut col_idx = Vec::with_capacity(edges as usize);
        for _ in 0..edges {
            // Preferential-ish attachment: bias toward low vertex ids.
            let r = rng.next_f64();
            let dst = ((r * r) * vertices as f64) as u64 % vertices;
            col_idx.push(dst as u32);
        }
        Self {
            vertices,
            edges,
            row_ptr,
            col_idx,
            // Compact allocator-style layout: tag deltas between the
            // arrays stay inside the base-delta compression windows.
            row_ptr_base: 0x1_0000_0000,
            edges_base: 0x1_0000_0000 + 0x100_0000,
            props_base: 0x1_0000_0000 + 0x300_0000,
        }
    }

    /// VA of `row_ptr[v]` (8-byte entries).
    pub fn row_ptr_addr(&self, v: u64) -> u64 {
        self.row_ptr_base + v * 8
    }

    /// VA of edge slot `e` (4-byte entries).
    pub fn edge_addr(&self, e: u64) -> u64 {
        self.edges_base + e * 4
    }

    /// VA of vertex `v`'s property slot (4-byte entries).
    pub fn prop_addr(&self, v: u64) -> u64 {
        self.props_base + v * 4
    }

    /// Total data footprint in 4 KB pages (row_ptr + edges + one
    /// property array).
    pub fn footprint_pages(&self) -> u64 {
        let rp = (self.vertices + 1) * 8;
        let ed = self.edges * 4;
        let pr = self.vertices * 4;
        rp.div_ceil(PAGE) + ed.div_ceil(PAGE) + pr.div_ceil(PAGE)
    }

    /// Synthesizes BFS frontiers: level 0 = {0}, growing then shrinking
    /// over `levels` levels, total work bounded by vertex count.
    pub fn bfs_frontiers(&self, levels: usize) -> Vec<Vec<u64>> {
        let mut rng = SplitMix64::new(0xBF5u64);
        let mut out = Vec::with_capacity(levels);
        let mut visited = 1u64;
        for l in 0..levels {
            // Bell-shaped frontier size.
            let peak = levels as f64 / 2.0;
            let x = (l as f64 - peak) / (levels as f64 / 4.0);
            let frac = (-x * x).exp();
            let size = ((self.vertices as f64 * 0.18 * frac) as u64).max(1);
            let mut frontier = Vec::with_capacity(size as usize);
            for _ in 0..size {
                frontier.push(rng.next_below(self.vertices));
            }
            visited += size;
            out.push(frontier);
            if visited >= self.vertices {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = CsrGraph::generate(1, 1000, 8);
        let b = CsrGraph::generate(1, 1000, 8);
        assert_eq!(a.row_ptr, b.row_ptr);
        assert_eq!(a.col_idx, b.col_idx);
    }

    #[test]
    fn csr_invariants() {
        let g = CsrGraph::generate(7, 5000, 8);
        assert_eq!(g.row_ptr.len() as u64, g.vertices + 1);
        assert_eq!(*g.row_ptr.last().unwrap(), g.edges);
        assert!(g.row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        assert!(g.col_idx.iter().all(|&d| (d as u64) < g.vertices));
    }

    #[test]
    fn heavy_tail_exists() {
        let g = CsrGraph::generate(3, 20_000, 8);
        let max_deg = g
            .row_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap();
        assert!(max_deg > 32, "expected hub vertices, max degree {max_deg}");
    }

    #[test]
    fn frontiers_bell_shaped() {
        let g = CsrGraph::generate(5, 50_000, 8);
        let f = g.bfs_frontiers(12);
        assert!(f.len() >= 3);
        let mid = f[f.len() / 2].len();
        assert!(mid >= f[0].len(), "frontier should grow toward the middle");
    }

    #[test]
    fn address_layout_disjoint() {
        let g = CsrGraph::generate(1, 1000, 4);
        assert!(g.row_ptr_addr(g.vertices) < g.edges_base);
        assert!(g.edge_addr(g.edges) < g.props_base);
    }

    #[test]
    fn footprint_scales_with_size() {
        let small = CsrGraph::generate(1, 1_000, 4).footprint_pages();
        let large = CsrGraph::generate(1, 100_000, 8).footprint_pages();
        assert!(large > small * 10);
    }
}
