//! Wavefront operations: the trace vocabulary of the simulator.
//!
//! Each [`Op`] models one wavefront-wide instruction. Global memory
//! ops carry per-lane virtual addresses (or a compact strided pattern)
//! that the coalescer in `gtr-vm` reduces to unique pages and lines.

use gtr_vm::addr::VirtAddr;

/// Per-lane address pattern of a global memory instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPattern {
    /// Explicit per-lane addresses (irregular access).
    Lanes(Box<[u64]>),
    /// `base + lane * stride` for `lanes` lanes (regular access,
    /// stored compactly).
    Strided {
        /// Address of lane 0.
        base: u64,
        /// Byte stride between lanes.
        stride: u64,
        /// Number of active lanes.
        lanes: u16,
    },
}

impl AccessPattern {
    /// Number of active lanes.
    pub fn lane_count(&self) -> usize {
        match self {
            AccessPattern::Lanes(v) => v.len(),
            AccessPattern::Strided { lanes, .. } => *lanes as usize,
        }
    }

    /// Expands the pattern into `out` (cleared first).
    pub fn expand(&self, out: &mut Vec<VirtAddr>) {
        out.clear();
        match self {
            AccessPattern::Lanes(v) => out.extend(v.iter().map(|&a| VirtAddr::new(a))),
            AccessPattern::Strided { base, stride, lanes } => {
                out.extend((0..*lanes as u64).map(|i| VirtAddr::new(base + i * stride)));
            }
        }
    }
}

/// One wavefront instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// ALU work: `latency` extra cycles beyond the issue cadence.
    Compute {
        /// Extra execution latency in cycles.
        latency: u32,
    },
    /// Global memory access through the TLB + cache hierarchy.
    Global {
        /// Per-lane addresses.
        pattern: AccessPattern,
        /// Whether the access is a store.
        write: bool,
    },
    /// LDS scratchpad access (byte offset within the workgroup's
    /// allocation).
    Lds {
        /// Offset within the workgroup's LDS allocation.
        offset: u32,
        /// Whether the access is a store.
        write: bool,
    },
    /// Workgroup barrier.
    Barrier,
}

impl Op {
    /// ALU op with the given extra latency.
    pub fn compute(latency: u32) -> Self {
        Op::Compute { latency }
    }

    /// Global read with explicit lane addresses.
    pub fn global_read(lanes: Vec<u64>) -> Self {
        Op::Global { pattern: AccessPattern::Lanes(lanes.into_boxed_slice()), write: false }
    }

    /// Global write with explicit lane addresses.
    pub fn global_write(lanes: Vec<u64>) -> Self {
        Op::Global { pattern: AccessPattern::Lanes(lanes.into_boxed_slice()), write: true }
    }

    /// Strided global read (`base + lane*stride`).
    pub fn global_read_strided(base: u64, stride: u64, lanes: u16) -> Self {
        Op::Global { pattern: AccessPattern::Strided { base, stride, lanes }, write: false }
    }

    /// Strided global write.
    pub fn global_write_strided(base: u64, stride: u64, lanes: u16) -> Self {
        Op::Global { pattern: AccessPattern::Strided { base, stride, lanes }, write: true }
    }

    /// LDS read at `offset`.
    pub fn lds_read(offset: u32) -> Self {
        Op::Lds { offset, write: false }
    }

    /// LDS write at `offset`.
    pub fn lds_write(offset: u32) -> Self {
        Op::Lds { offset, write: true }
    }

    /// Whether this op accesses global memory.
    pub fn is_global(&self) -> bool {
        matches!(self, Op::Global { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_expansion() {
        let p = AccessPattern::Strided { base: 100, stride: 8, lanes: 4 };
        let mut out = Vec::new();
        p.expand(&mut out);
        assert_eq!(
            out,
            vec![VirtAddr::new(100), VirtAddr::new(108), VirtAddr::new(116), VirtAddr::new(124)]
        );
        assert_eq!(p.lane_count(), 4);
    }

    #[test]
    fn lanes_expansion_reuses_buffer() {
        let p = AccessPattern::Lanes(vec![1, 2, 3].into_boxed_slice());
        let mut out = vec![VirtAddr::new(999)];
        p.expand(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], VirtAddr::new(1));
    }

    #[test]
    fn constructors() {
        assert!(Op::global_read(vec![1]).is_global());
        assert!(Op::global_write_strided(0, 4, 64).is_global());
        assert!(!Op::compute(1).is_global());
        assert!(!Op::lds_read(0).is_global());
        assert!(!Op::Barrier.is_global());
    }
}
