//! Experiment-cell identity for the result cache behind `gtr-serve`.
//!
//! A *cell* is one point of the experiment space: `(app, machine,
//! reach config, execution mode)`. [`CellKey`] is its identity — the
//! key the serve layer memoizes completed stats documents under.
//!
//! The key extends the [`CheckpointKey`](crate::checkpoint::CheckpointKey)
//! discipline rather than replacing it. A checkpoint is keyed by the
//! *stream-shaping* GPU fields only, because timing-side knobs cannot
//! change the captured translation stream — that is what lets one
//! capture serve a whole sweep axis. A **result** is the opposite:
//! every timing-side knob (TLB geometry, latencies, I-cache sharing,
//! the reach configuration itself, sampling windows, tenancy) changes
//! the simulated outcome, so all of them must enter the key. `CellKey`
//! therefore carries both fingerprints side by side:
//!
//! * [`CellKey::stream_fingerprint`] — the checkpoint-sharing class
//!   ([`stream_fingerprint`]); cells that agree here can share one
//!   warmup capture even though their results differ.
//! * [`CellKey::timing_fingerprint`] — everything that determines the
//!   result beyond the stream: the full `GpuConfig`, the
//!   `ReachConfig` (including tenancy), and a mode descriptor (scale,
//!   exact vs sampled, sampling windows).
//!
//! Fingerprints hash the `Debug` renderings of the configuration
//! structs, the same construction [`stream_fingerprint`] uses: any
//! new field added to a config struct automatically invalidates old
//! cache entries instead of silently colliding with them.

use gtr_gpu::config::GpuConfig;

use crate::checkpoint::{fingerprint_str, stream_fingerprint};
use crate::config::ReachConfig;

/// The identity of one experiment cell — the memoization key of the
/// serve layer's result cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Application (trace) name the cell runs. Replicated multi-tenant
    /// traces carry the tenant count in their name, so a 4-tenant cell
    /// never collides with its solo twin.
    pub app: String,
    /// The checkpoint-sharing class: [`stream_fingerprint`] of the
    /// cell's GPU configuration. Unchanged by timing-side sweeps.
    pub stream_fingerprint: u64,
    /// Fingerprint over the full timing-relevant configuration: the
    /// whole `GpuConfig`, the `ReachConfig`, and the execution-mode
    /// descriptor. Changed by *any* knob that can change the result.
    pub timing_fingerprint: u64,
}

impl CellKey {
    /// The key of a cell running `app` on `gpu` under `reach` in the
    /// execution mode described by `mode`. The descriptor must encode
    /// everything about the run that the two config structs do not:
    /// scale label, exact vs sampled, sampling windows, side caches.
    /// Callers with the same semantics must render it identically —
    /// the serve layer builds it in exactly one place.
    pub fn new(app: &str, gpu: &GpuConfig, reach: &ReachConfig, mode: &str) -> Self {
        Self {
            app: app.to_string(),
            stream_fingerprint: stream_fingerprint(gpu),
            timing_fingerprint: fingerprint_str(&format!(
                "gpu={gpu:?} reach={reach:?} mode={mode}"
            )),
        }
    }

    /// The single 64-bit fingerprint the on-disk result cache files
    /// are named and validated by (FNV-1a over the key's fields).
    pub fn fingerprint(&self) -> u64 {
        fingerprint_str(&format!(
            "app={} stream={:016x} timing={:016x}",
            self.app, self.stream_fingerprint, self.timing_fingerprint
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingConfig;

    fn key(gpu: &GpuConfig, reach: &ReachConfig, mode: &str) -> CellKey {
        CellKey::new("GUPS", gpu, reach, mode)
    }

    #[test]
    fn timing_side_gpu_knobs_change_cell_key_but_not_stream_class() {
        // The property that separates CellKey from CheckpointKey:
        // sweeping a timing-side knob must produce a *different result
        // cache entry* while still *sharing the warmup checkpoint*.
        let base_gpu = GpuConfig::default();
        let reach = ReachConfig::ic_plus_lds();
        let base = key(&base_gpu, &reach, "exact");
        for (label, gpu) in [
            ("l2-tlb", base_gpu.clone().with_l2_tlb_entries(65_536)),
            ("sharers", base_gpu.clone().with_icache_sharers(8)),
        ] {
            let k = key(&gpu, &reach, "exact");
            assert_eq!(
                k.stream_fingerprint, base.stream_fingerprint,
                "{label}: timing-side knob must stay in the checkpoint-sharing class"
            );
            assert_ne!(
                k.timing_fingerprint, base.timing_fingerprint,
                "{label}: timing-side knob must change the result identity"
            );
            assert_ne!(k.fingerprint(), base.fingerprint());
        }
    }

    #[test]
    fn stream_shaping_knobs_change_both_fingerprints() {
        use gtr_vm::addr::PageSize;
        let reach = ReachConfig::ic_plus_lds();
        let base = key(&GpuConfig::default(), &reach, "exact");
        let big_pages = key(
            &GpuConfig::default().with_page_size(PageSize::Size2M),
            &reach,
            "exact",
        );
        assert_ne!(big_pages.stream_fingerprint, base.stream_fingerprint);
        assert_ne!(big_pages.fingerprint(), base.fingerprint());
    }

    #[test]
    fn reach_and_mode_enter_the_key() {
        let gpu = GpuConfig::default();
        let base = key(&gpu, &ReachConfig::ic_plus_lds(), "exact");
        let lds = key(&gpu, &ReachConfig::lds_only(), "exact");
        assert_ne!(lds.fingerprint(), base.fingerprint(), "reach config");
        let cfg = SamplingConfig::paper_default();
        let sampled = key(&gpu, &ReachConfig::ic_plus_lds(), &format!("sampled {cfg:?}"));
        assert_ne!(sampled.fingerprint(), base.fingerprint(), "execution mode");
        // Different sampling windows are different cells too.
        let other = key(
            &gpu,
            &ReachConfig::ic_plus_lds(),
            &format!("sampled {:?}", cfg.scaled(0.1)),
        );
        assert_ne!(other.fingerprint(), sampled.fingerprint(), "sampling windows");
    }

    #[test]
    fn tenancy_enters_the_key_via_reach_and_app_name() {
        use gtr_vm::tenancy::SharingPolicy;
        let gpu = GpuConfig::default();
        let solo = key(&gpu, &ReachConfig::ic_plus_lds(), "exact");
        let tenanted = key(
            &gpu,
            &ReachConfig::ic_plus_lds().with_tenancy(4, SharingPolicy::SubEntry),
            "exact",
        );
        assert_ne!(tenanted.fingerprint(), solo.fingerprint(), "tenancy config");
        let other_policy = key(
            &gpu,
            &ReachConfig::ic_plus_lds().with_tenancy(4, SharingPolicy::Shared),
            "exact",
        );
        assert_ne!(other_policy.fingerprint(), tenanted.fingerprint(), "sharing policy");
    }

    #[test]
    fn key_is_deterministic() {
        let a = key(&GpuConfig::default(), &ReachConfig::baseline(), "exact");
        let b = key(&GpuConfig::default(), &ReachConfig::baseline(), "exact");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
