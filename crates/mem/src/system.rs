//! The shared back end of the memory hierarchy: GPU L2 data cache +
//! DRAM. Every request below the per-CU L1s — data misses, instruction
//! misses, and IOMMU page-table reads — funnels through here.

use gtr_sim::Cycle;

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::energy::{EnergyCounters, EnergyModel};

/// Configuration for [`MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystemConfig {
    /// L2 data cache geometry (Table 1: 4 MB, 16-way).
    pub l2: CacheConfig,
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// Energy model for Figure 13c.
    pub energy: EnergyModel,
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self { l2: CacheConfig::gpu_l2(), dram: DramConfig::default(), energy: EnergyModel::default() }
    }
}

/// L2 data cache backed by DRAM.
///
/// # Example
///
/// ```
/// use gtr_mem::system::{MemorySystem, MemorySystemConfig};
/// let mut mem = MemorySystem::new(MemorySystemConfig::default());
/// let t1 = mem.read(0, 4096);
/// let t2 = mem.read(t1, 4096);
/// assert!(t2 - t1 < t1, "second access hits in L2");
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l2: Cache,
    dram: Dram,
    energy_model: EnergyModel,
}

impl MemorySystem {
    /// Creates a cold memory system.
    pub fn new(config: MemorySystemConfig) -> Self {
        Self {
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            energy_model: config.energy,
        }
    }

    fn access(&mut self, now: Cycle, addr: u64, is_write: bool) -> Cycle {
        let line = addr / self.l2.config().line_bytes;
        let t = now + self.l2.latency();
        let res = self.l2.access(line, is_write);
        if res.hit {
            return t;
        }
        if let Some(victim) = res.writeback {
            // Writeback drains in the background; it occupies DRAM but
            // does not delay this request's critical path.
            let _ = self.dram.write_line(t, victim);
        }
        self.dram.read_line(t, line).0
    }

    /// Reads the line containing byte address `addr`.
    pub fn read(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access(now, addr, false)
    }

    /// Writes the line containing byte address `addr`.
    pub fn write(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access(now, addr, true)
    }

    /// The L2 data cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Mutable access to the L2 (DUCATI steals capacity here).
    pub fn l2_mut(&mut self) -> &mut Cache {
        &mut self.l2
    }

    /// The DRAM device.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable access to DRAM (DUCATI's part-of-memory TLB reads it
    /// directly).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Total DRAM energy in nanojoules given total elapsed `cycles`.
    pub fn dram_energy_nj(&self, cycles: u64) -> f64 {
        self.energy_model.total_nj(self.dram.energy_counters(), cycles)
    }

    /// Raw DRAM energy counters.
    pub fn dram_energy_counters(&self) -> &EnergyCounters {
        self.dram.energy_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_hit_is_cheap() {
        let mut m = MemorySystem::new(MemorySystemConfig::default());
        let cold = m.read(0, 0x8000);
        let warm_done = m.read(cold, 0x8000);
        assert_eq!(warm_done - cold, m.l2().latency());
    }

    #[test]
    fn miss_goes_to_dram() {
        let mut m = MemorySystem::new(MemorySystemConfig::default());
        let before = m.dram().reads();
        m.read(0, 0x10_000);
        assert_eq!(m.dram().reads(), before + 1);
    }

    #[test]
    fn dirty_victims_write_back_to_dram() {
        let cfg = MemorySystemConfig {
            l2: CacheConfig { capacity_bytes: 128, line_bytes: 64, assoc: 1, latency: 2 },
            ..Default::default()
        };
        let mut m = MemorySystem::new(cfg);
        let t = m.write(0, 0); // line 0, set 0, dirty
        let t = m.read(t, 128); // line 2, set 0: evicts dirty line 0
        let _ = t;
        assert_eq!(m.dram().writes(), 1);
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut m = MemorySystem::new(MemorySystemConfig::default());
        let e0 = m.dram_energy_nj(0);
        let mut t = 0;
        for i in 0..100u64 {
            t = m.read(t, i * 4096);
        }
        assert!(m.dram_energy_nj(0) > e0);
    }
}
