//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A generic event queue ordered by `(time, insertion sequence)`.
///
/// Two events scheduled for the same cycle are delivered in the order
/// they were pushed, which — combined with the workspace-wide rule that
/// all randomness is seeded — makes every simulation reproducible.
///
/// # Example
///
/// ```
/// use gtr_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: Reverse<(Cycle, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), seq: 0 }
    }

    /// Schedules `payload` to fire at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3, 30);
        q.push(1, 10);
        q.push(2, 20);
        assert_eq!(q.pop(), Some((1, 10)));
        assert_eq!(q.pop(), Some((2, 20)));
        assert_eq!(q.pop(), Some((3, 30)));
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(5, 'a');
        q.push(5, 'b');
        assert_eq!(q.pop(), Some((5, 'a')));
        q.push(5, 'c');
        q.push(4, 'd');
        assert_eq!(q.pop(), Some((4, 'd')));
        assert_eq!(q.pop(), Some((5, 'b')));
        assert_eq!(q.pop(), Some((5, 'c')));
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(9, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
        q.clear();
        assert!(q.is_empty());
    }
}
