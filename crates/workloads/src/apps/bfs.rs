//! BFS (Rodinia-style level-synchronous breadth-first search over the
//! Pannotia-class synthetic graph).
//!
//! Table 2: 24 kernel launches (two alternating kernels per level, so
//! never back-to-back), Medium PTW-PKI. Frontier expansion gathers
//! neighbor lists scattered across the edge array and updates vertex
//! properties divergently — irregular, but over a footprint within
//! reconfigurable reach, so BFS benefits solidly from the scheme.

use gtr_gpu::kernel::{AppTrace, KernelDesc};
use gtr_sim::rng::SplitMix64;

use crate::gen::{into_workgroups, WaveBuilder, PAGE};
use crate::graph::CsrGraph;
use crate::scale::Scale;

/// Vertex count.
pub const VERTICES: u64 = 131_072;

/// Builds the BFS trace.
pub fn build(scale: Scale) -> AppTrace {
    let graph = CsrGraph::generate(scale.seed() ^ 0xBF5, VERTICES, 8);
    let mut rng = SplitMix64::new(scale.seed() ^ 0xBF50);
    let levels = 12usize;
    let frontiers = graph.bfs_frontiers(levels);
    let mut kernels = Vec::with_capacity(frontiers.len() * 2);
    for frontier in &frontiers {
        // Expansion kernel: gather neighbor lists + relax properties.
        let waves = (frontier.len() / 256).clamp(2, 32);
        let mut programs = Vec::with_capacity(waves);
        for _ in 0..waves {
            let mut b = WaveBuilder::new(6);
            for _ in 0..scale.count(16) {
                // Pick frontier vertices and touch their CSR rows.
                let pages: Vec<u64> = (0..16)
                    .map(|_| {
                        let v = frontier[rng.next_below(frontier.len() as u64) as usize];
                        graph.edge_addr(graph.row_ptr[v as usize]) / PAGE
                            - graph.edges_base / PAGE
                    })
                    .collect();
                b.stream_read(graph.row_ptr_addr(rng.next_below(graph.vertices)));
                b.gather_pages(&mut rng, graph.edges_base, &pages);
                b.gather(&mut rng, graph.props_base, graph.vertices * 4 / PAGE, 8);
            }
            programs.push(b.build());
        }
        kernels.push(KernelDesc::new("bfs_kernel", 96, 0, into_workgroups(programs, 4)));

        // Frontier-update kernel: smaller, mostly streaming.
        let mut programs2 = Vec::with_capacity(4);
        for w in 0..4u64 {
            let mut b = WaveBuilder::new(8);
            for i in 0..scale.count(8) as u64 {
                b.stream_read(graph.props_base + (w * 64 + i) * 256);
                b.stream_write(graph.props_base + (w * 64 + i) * 256);
            }
            programs2.push(b.build());
        }
        kernels.push(KernelDesc::new("bfs_kernel2", 48, 0, into_workgroups(programs2, 4)));
    }
    AppTrace::new("BFS", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_kernels_no_b2b() {
        let app = build(Scale::tiny());
        assert!(app.kernels().len() >= 4);
        assert_eq!(app.kernels().len() % 2, 0);
        assert!(!app.has_back_to_back_kernels());
        assert_eq!(app.distinct_kernels(), 2);
    }

    #[test]
    fn paper_scale_near_24_kernels() {
        let app = build(Scale::paper());
        assert!((20..=24).contains(&app.kernels().len()), "{}", app.kernels().len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(build(Scale::tiny()), build(Scale::tiny()));
    }
}
