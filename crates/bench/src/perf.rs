//! Simulator-throughput measurement: the perf regression harness.
//!
//! Every figure of the paper reproduction is a sweep of the app ×
//! variant matrix through the cycle-level simulator, so the number
//! that gates iteration speed is *simulated cycles per second* on the
//! main matrix. Each measurement runs the sweep [`MEASURE_PASSES`]
//! times and keeps the fastest pass by process CPU time (wall clock
//! is also recorded), making the gate robust to co-tenant machine
//! load. This module measures it on a fixed
//! tiny-scale workload and serializes the result to
//! `BENCH_sim_throughput.json` at the repository root, giving every
//! future PR a committed baseline to compare against (`perf --check`
//! fails CI when throughput regresses more than
//! [`REGRESSION_TOLERANCE_PCT`]).
//!
//! No external dependencies: JSON is emitted and parsed by hand (the
//! schema is flat and owned by this module), so the harness works in
//! fully offline environments.
//!
//! Baseline files hold a **history**: a JSON array of records, one
//! per measured commit, newest last. `--check` gates against the last
//! record; the default (re-baseline) mode appends a record instead of
//! overwriting, so throughput evolution stays reviewable in-repo.
//! Files written before the history format (a bare object) still
//! parse as a one-record history.

use std::path::{Path, PathBuf};
use std::time::Instant;

use gtr_workloads::scale::Scale;

use crate::figures;
use crate::harness::RunMode;

/// File name of the committed throughput baseline, at the repo root.
pub const BASELINE_FILE: &str = "BENCH_sim_throughput.json";

/// `--check` fails when measured throughput falls more than this far
/// below the committed baseline.
pub const REGRESSION_TOLERANCE_PCT: f64 = 20.0;

/// Number of back-to-back sweeps per measurement; the fastest is
/// reported. Repeating suppresses one-off scheduler/co-tenant noise.
pub const MEASURE_PASSES: usize = 3;

/// One throughput measurement of the tiny-scale main matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Git commit the measurement was taken at (or `"unknown"`).
    pub commit: String,
    /// Workload scale label (`"tiny"` for the committed baseline).
    pub scale: String,
    /// Wall-clock time of the fastest sweep in milliseconds.
    pub wall_ms: f64,
    /// Process CPU time (utime + stime) of the fastest sweep in
    /// milliseconds. Falls back to `wall_ms` where `/proc/self/stat`
    /// is unavailable. CPU time is what the regression gate tracks:
    /// unlike wall clock it is insensitive to co-tenant machine load.
    pub cpu_ms: f64,
    /// Total simulated cycles across every matrix cell.
    pub sim_cycles: u64,
    /// `sim_cycles / cpu seconds` — the tracked throughput metric.
    pub cycles_per_sec: f64,
}

impl PerfReport {
    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"commit\": \"{}\",\n  \"scale\": \"{}\",\n  \"wall_ms\": {:.1},\n  \"cpu_ms\": {:.1},\n  \"sim_cycles\": {},\n  \"cycles_per_sec\": {:.0}\n}}\n",
            self.commit, self.scale, self.wall_ms, self.cpu_ms, self.sim_cycles, self.cycles_per_sec
        )
    }

    /// Parses a report written by [`PerfReport::to_json`]. Returns
    /// `None` when a field is missing or malformed.
    pub fn from_json(s: &str) -> Option<Self> {
        let wall_ms = json_num(s, "wall_ms")?;
        Some(Self {
            commit: json_str(s, "commit")?,
            scale: json_str(s, "scale")?,
            wall_ms,
            // Absent in baselines written before CPU-time tracking.
            cpu_ms: json_num(s, "cpu_ms").unwrap_or(wall_ms),
            sim_cycles: json_num(s, "sim_cycles")? as u64,
            cycles_per_sec: json_num(s, "cycles_per_sec")?,
        })
    }
}

fn json_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim())
}

fn json_str(s: &str, key: &str) -> Option<String> {
    json_field(s, key)?
        .strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

fn json_num(s: &str, key: &str) -> Option<f64> {
    json_field(s, key)?.parse().ok()
}

/// Splits a baseline document into per-record object substrings, in
/// file order (oldest first, newest last). Accepts both the history
/// format (a JSON array of records) and the pre-history format (one
/// bare object, which yields a one-element history). Records are flat
/// objects — no nested braces — so lexical `{`..`}` matching is exact.
pub fn split_history(s: &str) -> Vec<&str> {
    let mut records = Vec::new();
    let mut start = None;
    for (i, c) in s.char_indices() {
        match c {
            '{' if start.is_none() => start = Some(i),
            '}' => {
                if let Some(b) = start.take() {
                    records.push(&s[b..=i]);
                }
            }
            _ => {}
        }
    }
    records
}

/// Appends `record` (one object, as emitted by a `to_json`) to a
/// baseline history document, returning the new document. When the
/// last existing record was taken at the same commit it is replaced
/// instead — re-measuring on a dirty tree keeps one record per
/// commit, as the history is meant to read as one point per PR.
pub fn append_history(existing: &str, record: &str) -> String {
    let mut records: Vec<String> =
        split_history(existing).into_iter().map(str::to_string).collect();
    let same_commit = records
        .last()
        .zip(json_str(record, "commit"))
        .is_some_and(|(last, commit)| json_str(last, "commit").as_ref() == Some(&commit));
    if same_commit {
        records.pop();
    }
    records.push(record.trim().to_string());
    let mut doc = String::from("[\n");
    doc.push_str(&records.join(",\n"));
    doc.push_str("\n]\n");
    doc
}

/// The newest (last) record of a [`PerfReport`] history document.
pub fn latest_report(s: &str) -> Option<PerfReport> {
    PerfReport::from_json(split_history(s).last()?)
}

/// The newest (last) record of a [`MatrixPerfReport`] history document.
pub fn latest_matrix_report(s: &str) -> Option<MatrixPerfReport> {
    MatrixPerfReport::from_json(split_history(s).last()?)
}

/// Process CPU time (utime + stime) in milliseconds, read from
/// `/proc/self/stat`. `None` on non-Linux systems or parse failure.
fn cpu_time_ms() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces/parens; fields resume after
    // the *last* ')'. utime and stime are stat fields 14 and 15,
    // i.e. tokens 11 and 12 counting from the state field.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut tok = rest.split_whitespace();
    let utime: u64 = tok.nth(11)?.parse().ok()?;
    let stime: u64 = tok.next()?.parse().ok()?;
    // Kernel clock ticks are USER_HZ = 100 on every mainstream build.
    Some((utime + stime) as f64 * 10.0)
}

/// One timed sweep result: fastest pass of `passes` runs of the main
/// matrix at `scale` under `mode`, with cycle totals asserted
/// identical across passes.
struct SweepTiming {
    wall_ms: f64,
    cpu_ms: f64,
    cells: u64,
    sim_cycles: u64,
}

fn timed_sweeps(scale: Scale, mode: &RunMode, passes: usize, what: &str) -> SweepTiming {
    let mut best: Option<(f64, f64)> = None; // (wall_ms, cpu_ms)
    let mut sim_cycles = 0u64;
    let mut cells = 0u64;
    for pass in 0..passes {
        let cpu0 = cpu_time_ms();
        let t = Instant::now();
        let m = figures::main_matrix_mode(scale, false, mode);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let cpu_ms = match (cpu0, cpu_time_ms()) {
            (Some(a), Some(b)) => b - a,
            _ => wall_ms,
        };
        let cycles: u64 = m
            .baseline
            .iter()
            .chain(m.variants.iter().flat_map(|(_, stats)| stats.iter()))
            .map(|s| s.total_cycles)
            .sum();
        if pass == 0 {
            sim_cycles = cycles;
            cells = (m.baseline.len() * (1 + m.variants.len())) as u64;
        } else {
            assert_eq!(cycles, sim_cycles, "non-deterministic {what} sweep");
        }
        if best.is_none_or(|(_, c)| cpu_ms < c) {
            best = Some((wall_ms, cpu_ms));
        }
    }
    let (wall_ms, cpu_ms) = best.expect("at least one measurement pass");
    SweepTiming { wall_ms, cpu_ms, cells, sim_cycles }
}

/// Runs the main (Fig 13/14/15) matrix at `scale` [`MEASURE_PASSES`]
/// times and reports the fastest pass by CPU time (wall clock where
/// CPU time is unavailable). Simulated cycle counts are asserted
/// identical across passes — the sweep is deterministic. `workers`
/// pins the matrix worker-thread count (0 = available parallelism);
/// the results are bit-identical for any value.
pub fn measure_workers(scale: Scale, scale_label: &str, workers: usize) -> PerfReport {
    let mode = RunMode::exact().with_workers(workers);
    let t = timed_sweeps(scale, &mode, MEASURE_PASSES, "exact");
    PerfReport {
        commit: git_commit(),
        scale: scale_label.to_string(),
        wall_ms: t.wall_ms,
        cpu_ms: t.cpu_ms,
        sim_cycles: t.sim_cycles,
        cycles_per_sec: t.sim_cycles as f64 / (t.cpu_ms / 1e3).max(1e-9),
    }
}

/// [`measure_workers`] with the default worker count.
pub fn measure(scale: Scale, scale_label: &str) -> PerfReport {
    measure_workers(scale, scale_label, 0)
}

/// The standard committed measurement: tiny scale.
pub fn measure_tiny() -> PerfReport {
    measure(Scale::tiny(), "tiny")
}

/// File name of the committed paper-scale sampled-matrix baseline, at
/// the repo root.
pub const PAPER_BASELINE_FILE: &str = "BENCH_matrix_paper.json";

/// Passes for the paper-scale sampled measurement. The sweep is an
/// order of magnitude bigger than the tiny matrix, so fewer
/// repetitions; the second pass reuses the first pass's disk-cached
/// checkpoints, which is the steady-state cost being tracked.
pub const PAPER_MEASURE_PASSES: usize = 2;

/// One throughput measurement of the paper-scale sampled main matrix
/// (checkpointed warmup + interval sampling — the `all --sample`
/// path).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPerfReport {
    /// Git commit the measurement was taken at (or `"unknown"`).
    pub commit: String,
    /// Workload scale label (`"paper"` for the committed baseline).
    pub scale: String,
    /// Wall-clock time of the fastest pass in milliseconds.
    pub wall_ms: f64,
    /// Process CPU time of the fastest pass in milliseconds (falls
    /// back to wall time off-Linux). The regression gate tracks
    /// cells/sec derived from this.
    pub cpu_ms: f64,
    /// Matrix cells simulated per pass (apps × variants).
    pub cells: u64,
    /// Sum of every cell's `total_cycles` — the determinism anchor:
    /// sampled runs are bit-deterministic, so any drift means the
    /// model (not the machine) changed.
    pub sim_cycles: u64,
    /// `cells / cpu seconds` — the tracked throughput metric.
    pub cells_per_sec: f64,
    /// Cycle total of the **exact** (unsampled) paper-scale matrix —
    /// a second determinism anchor, recorded by `perf --paper
    /// --exact`. `None` in records measured without `--exact`.
    pub exact_sim_cycles: Option<u64>,
    /// Exact-mode matrix throughput in cells per CPU second, recorded
    /// by `perf --paper --exact`.
    pub exact_cells_per_sec: Option<f64>,
}

impl MatrixPerfReport {
    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"commit\": \"{}\",\n  \"scale\": \"{}\",\n  \"wall_ms\": {:.1},\n  \"cpu_ms\": {:.1},\n  \"cells\": {},\n  \"sim_cycles\": {},\n  \"cells_per_sec\": {:.2}",
            self.commit, self.scale, self.wall_ms, self.cpu_ms, self.cells, self.sim_cycles,
            self.cells_per_sec
        );
        if let (Some(cycles), Some(rate)) = (self.exact_sim_cycles, self.exact_cells_per_sec) {
            s.push_str(&format!(
                ",\n  \"exact_sim_cycles\": {cycles},\n  \"exact_cells_per_sec\": {rate:.2}"
            ));
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses a report written by [`MatrixPerfReport::to_json`].
    pub fn from_json(s: &str) -> Option<Self> {
        Some(Self {
            commit: json_str(s, "commit")?,
            scale: json_str(s, "scale")?,
            wall_ms: json_num(s, "wall_ms")?,
            cpu_ms: json_num(s, "cpu_ms")?,
            cells: json_num(s, "cells")? as u64,
            sim_cycles: json_num(s, "sim_cycles")? as u64,
            cells_per_sec: json_num(s, "cells_per_sec")?,
            exact_sim_cycles: json_num(s, "exact_sim_cycles").map(|v| v as u64),
            exact_cells_per_sec: json_num(s, "exact_cells_per_sec"),
        })
    }
}

/// Measures the paper-scale sampled main matrix (shared warmup
/// checkpoints, cached on disk under `target/ckpt-cache`) and reports
/// the fastest of [`PAPER_MEASURE_PASSES`] passes. Cycle counts are
/// asserted identical across passes — checkpointed sampling is as
/// deterministic as exact simulation.
///
/// `workers` pins the matrix worker-thread count (0 = available
/// parallelism). With `exact` set the **exact** (unsampled) matrix is
/// additionally swept and its cell throughput and cycle anchor are
/// recorded in the report's `exact_*` fields — this is the `perf
/// --paper --exact` path, budget-gated in CI because it simulates
/// every cell in full.
pub fn measure_paper_workers(workers: usize, exact: bool) -> MatrixPerfReport {
    let scale = Scale::paper();
    let ckpt_dir = repo_root().join("target").join("ckpt-cache");
    let mode = RunMode::sampled(figures::sampling_for(scale))
        .with_checkpoint_dir(&ckpt_dir)
        .with_workers(workers);
    let t = timed_sweeps(scale, &mode, PAPER_MEASURE_PASSES, "sampled");
    let (exact_sim_cycles, exact_cells_per_sec) = if exact {
        let mode = RunMode::exact().with_workers(workers);
        let e = timed_sweeps(scale, &mode, PAPER_MEASURE_PASSES, "exact paper");
        (Some(e.sim_cycles), Some(e.cells as f64 / (e.cpu_ms / 1e3).max(1e-9)))
    } else {
        (None, None)
    };
    MatrixPerfReport {
        commit: git_commit(),
        scale: "paper".to_string(),
        wall_ms: t.wall_ms,
        cpu_ms: t.cpu_ms,
        cells: t.cells,
        sim_cycles: t.sim_cycles,
        cells_per_sec: t.cells as f64 / (t.cpu_ms / 1e3).max(1e-9),
        exact_sim_cycles,
        exact_cells_per_sec,
    }
}

/// [`measure_paper_workers`] with the default worker count, sampled
/// only — the pre-`--exact` behaviour.
pub fn measure_paper() -> MatrixPerfReport {
    measure_paper_workers(0, false)
}

/// Compares a paper-scale measurement against the committed baseline;
/// same contract as [`check_against`].
pub fn check_matrix_against(
    baseline: Option<&MatrixPerfReport>,
    measured: &MatrixPerfReport,
) -> Result<String, String> {
    let Some(base) = baseline else {
        return Ok(format!(
            "no committed paper baseline; measured {:.2} cells/s",
            measured.cells_per_sec
        ));
    };
    if measured.sim_cycles != base.sim_cycles {
        return Err(format!(
            "sampled cycle total changed: baseline {} (commit {}), measured {} — \
             the model's behaviour changed; re-baseline deliberately with `--bin perf -- --paper`",
            base.sim_cycles, base.commit, measured.sim_cycles
        ));
    }
    if let (Some(b), Some(m)) = (base.exact_sim_cycles, measured.exact_sim_cycles) {
        if b != m {
            return Err(format!(
                "exact cycle total changed: baseline {b} (commit {}), measured {m} — \
                 the model's behaviour changed; re-baseline deliberately with \
                 `--bin perf -- --paper --exact`",
                base.commit
            ));
        }
    }
    let floor = base.cells_per_sec * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0);
    let delta_pct = (measured.cells_per_sec / base.cells_per_sec - 1.0) * 100.0;
    let mut verdict = format!(
        "baseline {:.2} cells/s (commit {}), measured {:.2} cells/s ({:+.1}%)",
        base.cells_per_sec, base.commit, measured.cells_per_sec, delta_pct
    );
    if let (Some(b), Some(m)) = (base.exact_cells_per_sec, measured.exact_cells_per_sec) {
        verdict.push_str(&format!("; exact {b:.2} -> {m:.2} cells/s"));
        if m < b * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0) {
            return Err(format!(
                "{verdict}: exact-mode regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
            ));
        }
    }
    if measured.cells_per_sec < floor {
        Err(format!(
            "{verdict}: regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
        ))
    } else {
        Ok(verdict)
    }
}

/// Current `HEAD` commit hash, or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Compares `measured` against the committed baseline. Returns
/// `Err(message)` when throughput regressed beyond the tolerance, and
/// `Ok(message)` (a human-readable verdict) otherwise — including when
/// no baseline exists yet.
pub fn check_against(baseline: Option<&PerfReport>, measured: &PerfReport) -> Result<String, String> {
    let Some(base) = baseline else {
        return Ok(format!(
            "no committed baseline; measured {:.0} cycles/s",
            measured.cycles_per_sec
        ));
    };
    if measured.sim_cycles != base.sim_cycles {
        return Err(format!(
            "simulated cycle count changed: baseline {} (commit {}), measured {} — \
             the model's behaviour changed; re-baseline deliberately with `--bin perf`",
            base.sim_cycles, base.commit, measured.sim_cycles
        ));
    }
    let floor = base.cycles_per_sec * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0);
    let delta_pct = (measured.cycles_per_sec / base.cycles_per_sec - 1.0) * 100.0;
    let verdict = format!(
        "baseline {:.0} cycles/s (commit {}), measured {:.0} cycles/s ({:+.1}%)",
        base.cycles_per_sec, base.commit, measured.cycles_per_sec, delta_pct
    );
    if measured.cycles_per_sec < floor {
        Err(format!(
            "{verdict}: regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
        ))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let r = PerfReport {
            commit: "abc1234".into(),
            scale: "tiny".into(),
            wall_ms: 1234.5,
            cpu_ms: 1200.0,
            sim_cycles: 987_654_321,
            cycles_per_sec: 800_000_000.0,
        };
        let parsed = PerfReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed.commit, r.commit);
        assert_eq!(parsed.scale, r.scale);
        assert_eq!(parsed.sim_cycles, r.sim_cycles);
        assert!((parsed.wall_ms - r.wall_ms).abs() < 0.1);
        assert!((parsed.cycles_per_sec - r.cycles_per_sec).abs() < 1.0);
    }

    fn matrix_report(commit: &str) -> MatrixPerfReport {
        MatrixPerfReport {
            commit: commit.into(),
            scale: "paper".into(),
            wall_ms: 10000.0,
            cpu_ms: 9800.0,
            cells: 40,
            sim_cycles: 44_523_456,
            cells_per_sec: 4.08,
            exact_sim_cycles: None,
            exact_cells_per_sec: None,
        }
    }

    #[test]
    fn history_appends_newest_last_and_reads_legacy_single_object() {
        let r1 = matrix_report("aaa1111");
        let mut r2 = matrix_report("bbb2222");
        r2.cells_per_sec = 5.0;
        // Legacy file: a bare object is a one-record history.
        let legacy = r1.to_json();
        assert_eq!(split_history(&legacy).len(), 1);
        assert_eq!(latest_matrix_report(&legacy).unwrap().commit, "aaa1111");
        // Appending wraps into an array, newest last.
        let doc = append_history(&legacy, &r2.to_json());
        let records = split_history(&doc);
        assert_eq!(records.len(), 2);
        assert_eq!(MatrixPerfReport::from_json(records[0]).unwrap().commit, "aaa1111");
        let last = latest_matrix_report(&doc).unwrap();
        assert_eq!(last.commit, "bbb2222");
        assert!((last.cells_per_sec - 5.0).abs() < 1e-9);
        // Re-measuring at the same commit replaces the last record
        // rather than growing the history.
        let mut r2b = r2.clone();
        r2b.cells_per_sec = 6.0;
        let doc = append_history(&doc, &r2b.to_json());
        assert_eq!(split_history(&doc).len(), 2);
        assert!((latest_matrix_report(&doc).unwrap().cells_per_sec - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_history_accepts_first_record() {
        let doc = append_history("", &matrix_report("abc").to_json());
        assert_eq!(split_history(&doc).len(), 1);
        assert_eq!(latest_matrix_report(&doc).unwrap().commit, "abc");
        assert!(latest_matrix_report("").is_none());
    }

    #[test]
    fn exact_fields_round_trip_and_stay_optional() {
        let plain = matrix_report("abc");
        let parsed = MatrixPerfReport::from_json(&plain.to_json()).unwrap();
        assert_eq!(parsed.exact_sim_cycles, None);
        assert_eq!(parsed.exact_cells_per_sec, None);
        let mut exact = plain.clone();
        exact.exact_sim_cycles = Some(123_456_789);
        exact.exact_cells_per_sec = Some(3.25);
        let parsed = MatrixPerfReport::from_json(&exact.to_json()).unwrap();
        assert_eq!(parsed.exact_sim_cycles, Some(123_456_789));
        assert!((parsed.exact_cells_per_sec.unwrap() - 3.25).abs() < 1e-9);
    }

    #[test]
    fn exact_anchor_drift_fails_matrix_check() {
        let mut base = matrix_report("base");
        base.exact_sim_cycles = Some(1000);
        base.exact_cells_per_sec = Some(4.0);
        let mut m = base.clone();
        m.commit = "head".into();
        assert!(check_matrix_against(Some(&base), &m).is_ok());
        m.exact_sim_cycles = Some(1001);
        assert!(check_matrix_against(Some(&base), &m).is_err(), "exact drift must fail");
        m.exact_sim_cycles = Some(1000);
        m.exact_cells_per_sec = Some(4.0 * 0.79);
        assert!(check_matrix_against(Some(&base), &m).is_err(), "exact slowdown must fail");
        // A baseline without exact fields never gates them.
        m.exact_cells_per_sec = Some(0.01);
        assert!(check_matrix_against(Some(&matrix_report("base")), &m).is_ok());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(PerfReport::from_json("{}").is_none());
        assert!(PerfReport::from_json("not json").is_none());
        assert!(PerfReport::from_json("{\"commit\": \"x\"}").is_none());
    }

    #[test]
    fn regression_check_thresholds() {
        let base = PerfReport {
            commit: "base".into(),
            scale: "tiny".into(),
            wall_ms: 1000.0,
            cpu_ms: 1000.0,
            sim_cycles: 1_000_000,
            cycles_per_sec: 1000.0,
        };
        let mut m = base.clone();
        m.cycles_per_sec = 900.0; // -10%: within tolerance
        assert!(check_against(Some(&base), &m).is_ok());
        m.cycles_per_sec = 799.0; // -20.1%: regression
        assert!(check_against(Some(&base), &m).is_err());
        m.cycles_per_sec = 2000.0; // improvement
        assert!(check_against(Some(&base), &m).is_ok());
        assert!(check_against(None, &m).is_ok(), "missing baseline is not a failure");
        m.sim_cycles = 1_000_001; // determinism anchor moved
        assert!(check_against(Some(&base), &m).is_err(), "cycle drift must fail");
    }

    /// Satellite: the measurement path at tiny scale emits well-formed
    /// JSON with the full schema.
    #[test]
    fn throughput_smoke_produces_well_formed_json() {
        let report = measure_tiny();
        assert!(report.wall_ms > 0.0);
        assert!(report.sim_cycles > 0);
        assert!(report.cycles_per_sec > 0.0);
        let json = report.to_json();
        for field in ["commit", "scale", "wall_ms", "sim_cycles", "cycles_per_sec"] {
            assert!(json.contains(&format!("\"{field}\"")), "missing {field} in {json}");
        }
        let parsed = PerfReport::from_json(&json).expect("schema round-trips");
        assert_eq!(parsed.sim_cycles, report.sim_cycles);
        assert_eq!(parsed.scale, "tiny");
    }
}
