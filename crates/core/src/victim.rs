//! The translation fill and lookup flows of Figure 12.
//!
//! After an L1-TLB miss the reconfigurable structures are probed in
//! LDS (§4.2) → I-cache (§4.3) order (LDS first: private and closer).
//! On an L1-TLB eviction the victim tries the LDS segment for its VPN;
//! if that segment is App-mode (or the LDS itself displaces a
//! translation) the candidate continues to the direct-mapped I-cache
//! line; whatever falls out of the I-cache (or bypasses it) lands in
//! the L2 TLB. The `_traced` variant additionally narrates every hop
//! through a [`TraceSink`].

use gtr_sim::trace::{TraceEvent, TraceSink, TxStructure};
use gtr_sim::Cycle;
use gtr_vm::addr::{Translation, TranslationKey};
use gtr_vm::tlb::Tlb;

use crate::config::ReachConfig;
use crate::icache_tx::{IcInsert, TxIcache};
use crate::lds_tx::{LdsInsert, SegmentMode, TxLds};
use crate::obs::VictimLifetimes;

/// Which reconfigurable structure produced a victim-cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimHit {
    /// Hit in the CU's reconfigurable LDS.
    Lds(Translation),
    /// Hit in the CU group's reconfigurable I-cache.
    Icache(Translation),
}

impl VictimHit {
    /// The translation regardless of source.
    pub fn translation(&self) -> Translation {
        match *self {
            VictimHit::Lds(t) | VictimHit::Icache(t) => t,
        }
    }
}

/// Probes the reconfigurable structures for `key` (Fig 12 lookup
/// order). A hit returns a copy (the entry stays resident for the
/// other CUs) — the caller promotes it into the L1 TLB and routes the
/// displaced L1 victim through [`fill_l1_victim`].
pub fn lookup_victim(
    cfg: &ReachConfig,
    lds: &mut TxLds,
    icache: &mut TxIcache,
    key: TranslationKey,
) -> Option<VictimHit> {
    if cfg.lds_enabled {
        if let Some(t) = lds.lookup(key) {
            return Some(VictimHit::Lds(t));
        }
    }
    if cfg.icache_enabled {
        if let Some(t) = icache.lookup_tx(key) {
            return Some(VictimHit::Icache(t));
        }
    }
    None
}

/// Routes an L1-TLB victim through the Fig 12 fill flow, terminating
/// in the L2 TLB. Returns the number of structures the victim (or a
/// displaced translation) was written into.
///
/// Untraced convenience over [`fill_l1_victim_traced`] — identical
/// behaviour with tracing permanently off.
pub fn fill_l1_victim(
    cfg: &ReachConfig,
    lds: &mut TxLds,
    icache: &mut TxIcache,
    l2_tlb: &mut Tlb,
    victim: Translation,
) -> usize {
    fill_l1_victim_traced(cfg, lds, icache, l2_tlb, victim, 0, None, None)
}

/// [`fill_l1_victim`] with an optional [`TraceSink`]: every insert,
/// displacement and bypass along the ❶→❻ flow is emitted as a
/// [`TraceEvent::VictimInsert`] / [`TraceEvent::VictimBypass`], with
/// `mode_flip` marking writes that claimed new Tx capacity (an Idle
/// LDS segment or a non-Tx I-cache line switching to Tx mode).
///
/// Passing `None` compiles to the untraced flow: the pre-insert mode
/// probes that feed `mode_flip` are themselves gated on the sink, so a
/// disabled trace costs one branch per structure and nothing else.
///
/// `now` stamps the emitted events (and the lifetime records) with the
/// simulation cycle of the fill; `obs`, when present, opens/closes
/// victim-entry lifetime records in a [`VictimLifetimes`] tracker in
/// lock-step with the emitted events.
#[allow(clippy::too_many_arguments)]
pub fn fill_l1_victim_traced(
    cfg: &ReachConfig,
    lds: &mut TxLds,
    icache: &mut TxIcache,
    l2_tlb: &mut Tlb,
    victim: Translation,
    now: Cycle,
    mut sink: Option<&mut dyn TraceSink>,
    mut obs: Option<&mut VictimLifetimes>,
) -> usize {
    let mut writes = 0;
    // ❶→❷: try the LDS segment for this VPN.
    let mut candidate = Some(victim);
    if cfg.lds_enabled {
        let was_idle =
            sink.is_some() && lds.segment_mode(victim.key) == SegmentMode::Idle;
        match lds.insert(victim) {
            LdsInsert::Inserted { evicted } => {
                writes += 1;
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(&TraceEvent::VictimInsert {
                        cycle: now,
                        structure: TxStructure::Lds,
                        vpn: victim.key.vpn.0,
                        vmid: victim.key.vmid.raw(),
                        evicted_vpn: evicted.map(|e| e.key.vpn.0),
                        evicted_vmid: evicted.map(|e| e.key.vmid.raw()),
                        mode_flip: was_idle,
                    });
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.insert(
                        TxStructure::Lds,
                        victim.key.vpn.0,
                        victim.key.vmid.raw(),
                        evicted.map(|e| (e.key.vpn.0, e.key.vmid.raw())),
                        now,
                    );
                }
                candidate = evicted; // ❹: LDS victim continues onward
            }
            LdsInsert::Bypassed => {
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(&TraceEvent::VictimBypass {
                        cycle: now,
                        structure: TxStructure::Lds,
                        vpn: victim.key.vpn.0,
                        vmid: victim.key.vmid.raw(),
                    });
                }
                candidate = Some(victim); // ❸
            }
        }
    }
    // ❺: the surviving candidate tries its direct-mapped I-cache line.
    let Some(cand) = candidate else { return writes };
    let mut to_l2 = Some(cand);
    if cfg.icache_enabled {
        let was_tx = sink.is_none() || icache.is_tx_line(cand.key);
        match icache.insert_tx(cand) {
            IcInsert::Inserted { evicted } => {
                writes += 1;
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(&TraceEvent::VictimInsert {
                        cycle: now,
                        structure: TxStructure::Icache,
                        vpn: cand.key.vpn.0,
                        vmid: cand.key.vmid.raw(),
                        evicted_vpn: evicted.map(|e| e.key.vpn.0),
                        evicted_vmid: evicted.map(|e| e.key.vmid.raw()),
                        mode_flip: !was_tx,
                    });
                }
                if let Some(o) = obs {
                    o.insert(
                        TxStructure::Icache,
                        cand.key.vpn.0,
                        cand.key.vmid.raw(),
                        evicted.map(|e| (e.key.vpn.0, e.key.vmid.raw())),
                        now,
                    );
                }
                to_l2 = evicted; // ❻: I-cache victim falls to the L2 TLB
            }
            IcInsert::Bypassed => {
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(&TraceEvent::VictimBypass {
                        cycle: now,
                        structure: TxStructure::Icache,
                        vpn: cand.key.vpn.0,
                        vmid: cand.key.vmid.raw(),
                    });
                }
                to_l2 = Some(cand);
            }
        }
    }
    // ❻: terminate in the L2 TLB (its own victim is simply dropped —
    // there is nothing below it but the page tables).
    if let Some(t) = to_l2 {
        let displaced = l2_tlb.insert(t);
        writes += 1;
        if let Some(s) = sink {
            s.emit(&TraceEvent::VictimInsert {
                cycle: now,
                structure: TxStructure::L2Tlb,
                vpn: t.key.vpn.0,
                vmid: t.key.vmid.raw(),
                evicted_vpn: displaced.map(|e| e.key.vpn.0),
                evicted_vmid: displaced.map(|e| e.key.vmid.raw()),
                mode_flip: false,
            });
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Replacement, SegmentSize, TxPerLine};
    use gtr_vm::addr::{Ppn, Vpn};
    use gtr_vm::tlb::TlbConfig;

    fn parts(cfg: &ReachConfig) -> (TxLds, TxIcache, Tlb) {
        let _ = cfg;
        (
            TxLds::new(16 * 1024, SegmentSize::Bytes32),
            TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware),
            Tlb::new(TlbConfig::set_associative(512, 16, 188)),
        )
    }

    fn tx(v: u64) -> Translation {
        Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v + 1))
    }

    #[test]
    fn victim_lands_in_lds_first() {
        let cfg = ReachConfig::ic_plus_lds();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(42));
        assert_eq!(lds.resident(), 1);
        assert_eq!(ic.resident_tx(), 0);
        assert!(l2.probe(tx(42).key).is_none());
    }

    #[test]
    fn app_mode_segment_routes_to_icache() {
        let cfg = ReachConfig::ic_plus_lds();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        lds.on_app_allocate(0, 16 * 1024); // whole LDS app-owned
        fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(42));
        assert_eq!(lds.resident(), 0);
        assert_eq!(ic.resident_tx(), 1);
    }

    #[test]
    fn ic_mode_line_routes_to_l2_tlb() {
        let cfg = ReachConfig::ic_plus_lds();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        lds.on_app_allocate(0, 16 * 1024);
        // Fill the whole I-cache with instructions so every line is IC-mode.
        for set in 0..32u64 {
            for way in 0..8u64 {
                ic.fetch(set + way * 32);
            }
        }
        fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(42));
        assert_eq!(ic.resident_tx(), 0);
        assert!(l2.probe(tx(42).key).is_some());
    }

    #[test]
    fn lds_eviction_cascades_into_icache() {
        let cfg = ReachConfig::ic_plus_lds();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        let n = lds.segment_count() as u64;
        // Fill one LDS segment's 3 ways, then a 4th to the same segment.
        for i in 0..3 {
            fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(9 + i * n));
        }
        fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(9 + 3 * n));
        assert_eq!(lds.resident(), 3);
        assert_eq!(ic.resident_tx(), 1, "LDS LRU victim moved into the I-cache");
        assert_eq!(ic.iter_tx().next().unwrap().key.vpn, Vpn(9));
    }

    #[test]
    fn lds_only_terminates_in_l2() {
        let cfg = ReachConfig::lds_only();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        lds.on_app_allocate(0, 16 * 1024);
        fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(7));
        assert_eq!(ic.resident_tx(), 0, "I-cache disabled");
        assert!(l2.probe(tx(7).key).is_some());
    }

    #[test]
    fn baseline_goes_straight_to_l2() {
        let cfg = ReachConfig::baseline();
        let (mut lds, mut ic, mut l2) = parts(&cfg);
        let writes = fill_l1_victim(&cfg, &mut lds, &mut ic, &mut l2, tx(5));
        assert_eq!(writes, 1);
        assert_eq!(lds.resident(), 0);
        assert_eq!(ic.resident_tx(), 0);
        assert!(l2.probe(tx(5).key).is_some());
    }

    #[test]
    fn lookup_order_lds_then_icache() {
        let cfg = ReachConfig::ic_plus_lds();
        let (mut lds, mut ic, _l2) = parts(&cfg);
        let t = tx(3);
        ic.insert_tx(t);
        // Only in the I-cache: the LDS misses first, then the IC hits.
        match lookup_victim(&cfg, &mut lds, &mut ic, t.key) {
            Some(VictimHit::Icache(found)) => assert_eq!(found, t),
            other => panic!("expected I-cache hit: {other:?}"),
        }
        // Present in both: the (private, closer) LDS answers first.
        lds.insert(t);
        match lookup_victim(&cfg, &mut lds, &mut ic, t.key) {
            Some(VictimHit::Lds(found)) => assert_eq!(found, t),
            other => panic!("expected LDS hit first: {other:?}"),
        }
    }

    #[test]
    fn disabled_structures_never_hit() {
        let cfg = ReachConfig::baseline();
        let (mut lds, mut ic, _l2) = parts(&cfg);
        lds.insert(tx(1));
        ic.insert_tx(tx(1));
        assert!(lookup_victim(&cfg, &mut lds, &mut ic, tx(1).key).is_none());
    }
}
