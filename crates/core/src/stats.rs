//! Run-level measurements: everything the paper's figures report.

use gtr_sim::hist::{CycleAttribution, Hist};
use gtr_sim::stats::{FiveNumberSummary, HitMiss, Sampler};

/// Per-kernel measurement record (Figs 5a and 11).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Cycles this launch took.
    pub cycles: u64,
    /// Ops (instructions) executed.
    pub instructions: u64,
    /// Page walks during this launch.
    pub page_walks: u64,
    /// Mean I-cache utilization (Eq 1) across instances, in percent.
    pub icache_utilization_pct: f64,
    /// LDS bytes requested per workgroup in this launch.
    pub lds_bytes_per_wg: u32,
}

/// One time-series sample of the system's cumulative counters.
///
/// The epoch sampler (enabled via `System::with_epochs`) records one
/// snapshot roughly every `epoch_len` cycles plus one final snapshot
/// at run end, turning end-of-run aggregates into the time-resolved
/// curves the paper plots (Fig 5's per-instance I-cache utilization,
/// Fig 15's translation-residency ramp). All fields except
/// [`EpochStats::resident_tx`] are *cumulative* since the start of the
/// run — per-epoch rates are the deltas between consecutive samples
/// ([`EpochStats::delta`]) — so the final sample always equals the
/// run's [`RunStats`] totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Simulation cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Translation requests issued to the L1 TLBs so far.
    pub translation_requests: u64,
    /// L1 TLB hits, summed over CUs.
    pub l1_hits: u64,
    /// L1 TLB misses, summed over CUs.
    pub l1_misses: u64,
    /// L2 TLB hits.
    pub l2_hits: u64,
    /// L2 TLB misses.
    pub l2_misses: u64,
    /// Reconfigurable-LDS lookup hits, summed over CUs (§4.2).
    pub lds_tx_hits: u64,
    /// Reconfigurable-LDS lookup misses, summed over CUs.
    pub lds_tx_misses: u64,
    /// Reconfigurable-I-cache lookup hits (§4.3).
    pub ic_tx_hits: u64,
    /// Reconfigurable-I-cache lookup misses.
    pub ic_tx_misses: u64,
    /// IOMMU page walks completed.
    pub page_walks: u64,
    /// Wavefront ops executed.
    pub instructions: u64,
    /// DRAM reads + writes.
    pub dram_accesses: u64,
    /// Translations resident in LDS + I-cache at the sample instant —
    /// a gauge, not a cumulative counter (Fig 15's curve).
    pub resident_tx: u64,
    /// LDS-only component of [`EpochStats::resident_tx`] (gauge):
    /// translations resident in Tx-mode LDS segments at the sample
    /// instant.
    pub lds_resident_tx: u64,
    /// I-cache-only component of [`EpochStats::resident_tx`] (gauge):
    /// translations resident in Tx-mode I-cache lines at the sample
    /// instant.
    pub ic_resident_tx: u64,
}

impl EpochStats {
    /// Per-epoch activity: every cumulative counter as the difference
    /// from `prev`; `cycle` and the `resident_tx` gauge keep `self`'s
    /// values.
    pub fn delta(&self, prev: &EpochStats) -> EpochStats {
        EpochStats {
            cycle: self.cycle,
            translation_requests: self.translation_requests - prev.translation_requests,
            l1_hits: self.l1_hits - prev.l1_hits,
            l1_misses: self.l1_misses - prev.l1_misses,
            l2_hits: self.l2_hits - prev.l2_hits,
            l2_misses: self.l2_misses - prev.l2_misses,
            lds_tx_hits: self.lds_tx_hits - prev.lds_tx_hits,
            lds_tx_misses: self.lds_tx_misses - prev.lds_tx_misses,
            ic_tx_hits: self.ic_tx_hits - prev.ic_tx_hits,
            ic_tx_misses: self.ic_tx_misses - prev.ic_tx_misses,
            page_walks: self.page_walks - prev.page_walks,
            instructions: self.instructions - prev.instructions,
            dram_accesses: self.dram_accesses - prev.dram_accesses,
            resident_tx: self.resident_tx,
            lds_resident_tx: self.lds_resident_tx,
            ic_resident_tx: self.ic_resident_tx,
        }
    }

    /// Whether every cumulative counter (and the clock) is ≥ `prev`'s —
    /// the invariant the sampler maintains between consecutive samples.
    pub fn monotone_from(&self, prev: &EpochStats) -> bool {
        self.cycle >= prev.cycle
            && self.translation_requests >= prev.translation_requests
            && self.l1_hits >= prev.l1_hits
            && self.l1_misses >= prev.l1_misses
            && self.l2_hits >= prev.l2_hits
            && self.l2_misses >= prev.l2_misses
            && self.lds_tx_hits >= prev.lds_tx_hits
            && self.lds_tx_misses >= prev.lds_tx_misses
            && self.ic_tx_hits >= prev.ic_tx_hits
            && self.ic_tx_misses >= prev.ic_tx_misses
            && self.page_walks >= prev.page_walks
            && self.instructions >= prev.instructions
            && self.dram_accesses >= prev.dram_accesses
    }
}

/// Measured-vs-extrapolated accounting of a sampled run
/// (`System::with_sampling`), exported as the `sampling` object
/// (introduced in schema v3; `side_cache_error_bound_pct` in v4).
///
/// Instruction partition: `warmup_insts + detail_insts +
/// fastforward_insts == RunStats::instructions`. Cycle partition:
/// `warmup_cycles + detail_cycles + fastforward_cycles ==
/// measured_cycles` (the actual simulated clock — small for the
/// functional phases, which run at zero modeled latency). The reported
/// `RunStats::total_cycles` is `detail_cycles + extrapolated_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplingMeta {
    /// Configured warmup window, instructions.
    pub warmup_window: u64,
    /// Configured detailed-interval window, instructions.
    pub detail_window: u64,
    /// Configured fast-forward window, instructions.
    pub fastforward_window: u64,
    /// Detailed intervals completed (including a partial final one).
    pub detail_intervals: u64,
    /// Instructions executed during warmup (functional warming).
    pub warmup_insts: u64,
    /// Instructions executed in detailed intervals.
    pub detail_insts: u64,
    /// Instructions executed in fast-forward intervals.
    pub fastforward_insts: u64,
    /// Simulated cycles elapsed during warmup.
    pub warmup_cycles: u64,
    /// Simulated cycles elapsed in detailed intervals — the measured
    /// basis of the extrapolation.
    pub detail_cycles: u64,
    /// Simulated cycles elapsed in fast-forward intervals.
    pub fastforward_cycles: u64,
    /// Cycles credited to the warmup + fast-forward instructions at
    /// the mean detailed-interval CPI.
    pub extrapolated_cycles: u64,
    /// The actual simulated clock at run end. Epoch snapshots are
    /// stamped against this clock, not against the extrapolated
    /// `total_cycles`.
    pub measured_cycles: u64,
    /// Extrapolation error bound, in percent of `total_cycles`: the
    /// min-to-max spread of per-detail-interval CPIs, scaled by the
    /// extrapolated share of the total.
    pub error_bound_pct: f64,
    /// Side-cache (DUCATI) divergence bound, in percent of
    /// `total_cycles`: the absolute difference between the detailed
    /// and functional fast-forward side-cache hit rates, scaled by
    /// the extrapolated share. Zero when no side cache is attached
    /// (schema v4; absent in older exports, parsed as 0).
    pub side_cache_error_bound_pct: f64,
    /// Whether warm state came from a restored warmup checkpoint.
    pub checkpoint_restored: bool,
}

impl SamplingMeta {
    /// Fraction of `RunStats::total_cycles` that was extrapolated
    /// rather than measured (0 when the run was too short to sample).
    pub fn extrapolated_share(&self) -> f64 {
        let total = self.detail_cycles + self.extrapolated_cycles;
        if total == 0 {
            0.0
        } else {
            self.extrapolated_cycles as f64 / total as f64
        }
    }
}

/// Per-tenant measurement record under multi-tenancy (TENANCY.md §4;
/// exported as the `tenants` array of schema v5).
///
/// Kernels run serially, so per-kernel counter deltas attribute
/// exactly to the launching tenant's address space — the per-tenant
/// fields sum to the corresponding [`RunStats`] globals (the invariant
/// `export::check_tenancy_invariants` gates).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// The tenant's VM-ID (its address space; `gtr_vm::tenancy`).
    pub vmid: u8,
    /// Workload label: the first kernel name attributed to this
    /// tenant (harnesses may overwrite it with the app name).
    pub app: String,
    /// Measured-clock cycles spent inside this tenant's kernels. The
    /// same basis solo runs report, in exact *and* sampled mode, so
    /// `cycles / solo_cycles` is a like-for-like slowdown.
    pub cycles: u64,
    /// Ops executed by this tenant's kernels.
    pub instructions: u64,
    /// Translation requests issued during this tenant's kernels.
    pub translation_requests: u64,
    /// L1 TLB hits/misses during this tenant's kernels.
    pub l1_tlb: HitMiss,
    /// Reconfigurable-LDS lookup hits/misses during this tenant's
    /// kernels.
    pub lds_tx: HitMiss,
    /// Reconfigurable-I-cache lookup hits/misses during this tenant's
    /// kernels.
    pub ic_tx: HitMiss,
    /// L2 TLB hits/misses during this tenant's kernels.
    pub l2_tlb: HitMiss,
    /// IOMMU page walks during this tenant's kernels.
    pub page_walks: u64,
    /// Pages shot down in this tenant's address space (driver events).
    pub shootdowns: u64,
    /// Cycles the same workload takes running alone on the GPU
    /// (filled by the sweep harness from a solo run; 0 when unknown).
    pub solo_cycles: u64,
}

impl TenantStats {
    /// Fairness metric: shared-run cycles over solo-run cycles
    /// (TENANCY.md §4). ≥ 1 in practice; 0 when no solo baseline was
    /// recorded.
    pub fn slowdown(&self) -> f64 {
        if self.solo_cycles > 0 && self.cycles > 0 {
            self.cycles as f64 / self.solo_cycles as f64
        } else {
            0.0
        }
    }
}

/// Aggregate coalesced-entry accounting (exported as the `coalescing`
/// object of schema v6; `None`/absent when `ReachConfig::tlb_coalescing`
/// is off, keeping older schemas byte-identical).
///
/// Sums the [`gtr_vm::tlb::CoalescingCounters`] of every structure that
/// holds translations — the per-CU L1 TLBs, the reconfigurable LDS
/// segments, the shared L2 TLB, and the reconfigurable I-caches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoalescingStats {
    /// Total entry inserts while coalescing was enabled.
    pub inserts: u64,
    /// Inserts whose entry covered more than one 4 KB page.
    pub entries_coalesced: u64,
    /// Pages covered across all inserts (sum of `2^span` per insert).
    pub span_pages: u64,
    /// Lookup hits served through a covering (non-exact-base) probe —
    /// hits that a 4 KB-entry TLB of the same geometry would have
    /// missed.
    pub coalesced_hits: u64,
    /// Covering entries split into buddy fragments (TLBs) or
    /// conservatively dropped whole (victim structures, which hold
    /// clean copies) by single-page shootdowns.
    pub shootdown_splits: u64,
}

impl CoalescingStats {
    /// Average pages mapped per installed entry — the translation-reach
    /// multiplier coalescing bought (1.0 when nothing coalesced).
    pub fn reach_multiplier(&self) -> f64 {
        if self.inserts == 0 {
            1.0
        } else {
            self.span_pages as f64 / self.inserts as f64
        }
    }

    /// Builds the exported aggregate from summed raw counters.
    pub fn from_counters(c: &gtr_vm::tlb::CoalescingCounters) -> Self {
        Self {
            inserts: c.inserts,
            entries_coalesced: c.coalesced,
            span_pages: c.span_pages,
            coalesced_hits: c.hits,
            shootdown_splits: c.splits,
        }
    }
}

/// Everything measured over one application run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Application name.
    pub app: String,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// Total wavefront ops executed.
    pub instructions: u64,
    /// Thread-level instructions (`instructions` × threads per wave) —
    /// the denominator of Table 2's PTW-PKI.
    pub thread_instructions: u64,
    /// Translation requests issued to the L1 TLBs (post-coalescing).
    pub translation_requests: u64,
    /// L1 TLB hits/misses aggregated over CUs.
    pub l1_tlb: HitMiss,
    /// L2 TLB hits/misses.
    pub l2_tlb: HitMiss,
    /// Reconfigurable-LDS lookup hits/misses.
    pub lds_tx: HitMiss,
    /// Reconfigurable-I-cache lookup hits/misses.
    pub ic_tx: HitMiss,
    /// Instruction-fetch hits/misses at the I-caches.
    pub inst_fetch: HitMiss,
    /// Page walks completed by the IOMMU.
    pub page_walks: u64,
    /// PTE memory accesses issued by walks.
    pub pte_accesses: u64,
    /// IOMMU device-L1 TLB hits/misses.
    pub dev_l1_tlb: HitMiss,
    /// IOMMU device-L2 TLB hits/misses.
    pub dev_l2_tlb: HitMiss,
    /// Page-walk-cache hits/misses, deepest level (PMD).
    pub pwc_pmd: HitMiss,
    /// DRAM reads + writes.
    pub dram_accesses: u64,
    /// Total DRAM energy in nanojoules (Fig 13c numerator).
    pub dram_energy_nj: f64,
    /// Peak translations resident in LDS+I-cache (Fig 15).
    pub peak_tx_entries: usize,
    /// Fraction of distinct translated VPNs requested by ≥2 CUs
    /// (Fig 14a).
    pub tx_shared_fraction: f64,
    /// Per-kernel records, in launch order (Fig 11).
    pub kernels: Vec<KernelStats>,
    /// Distribution of per-workgroup LDS requests (Fig 4a).
    pub lds_request_summary: FiveNumberSummary,
    /// Distribution of idle cycles between LDS port accesses (Fig 4b).
    pub lds_idle_summary: FiveNumberSummary,
    /// Distribution of idle cycles between I-cache port accesses
    /// (Fig 5b).
    pub icache_idle_summary: FiveNumberSummary,
    /// Distribution of per-kernel I-cache utilization (Fig 5a).
    pub icache_utilization_summary: FiveNumberSummary,
    /// Epoch-sampler period in cycles; 0 when sampling was disabled.
    pub epoch_len: u64,
    /// Cumulative counter snapshots in time order (empty unless the
    /// run was started with `System::with_epochs`). The last entry
    /// always matches this struct's end-of-run totals.
    pub epochs: Vec<EpochStats>,
    /// Per-resolution-path cycle attribution: every completed
    /// translation's latency charged to the component that served it
    /// (Fig-12 path order). Derived from always-on counters, so it is
    /// populated whether or not distribution recording was armed.
    pub attribution: CycleAttribution,
    /// Whether distribution recording (`System::with_distributions`)
    /// was armed for this run. When `false`, every histogram below is
    /// empty.
    pub dist_enabled: bool,
    /// Translation-latency histogram per resolution path
    /// ([`gtr_sim::trace::TracePath::ALL`] order); index `i`'s count
    /// and sum equal `attribution.slots[i]` when `dist_enabled`.
    pub latency_hists: [Hist; 6],
    /// IOMMU service latency per hit level (device-L1, device-L2,
    /// merged walk, full walk), for requests that missed down to the
    /// IOMMU.
    pub iommu_latency: [Hist; 4],
    /// Lifetimes (insert→evict, cycles) of victim entries evicted from
    /// Tx-mode LDS segments. Entries still resident at run end are
    /// censored; shootdown invalidations are excluded.
    pub victim_lifetime_lds: Hist,
    /// Lifetimes of victim entries evicted from Tx-mode I-cache lines.
    pub victim_lifetime_ic: Hist,
    /// Hits served by each evicted LDS victim entry while resident;
    /// bucket 0 counts dead-on-arrival entries (inserted, never hit).
    pub victim_reuse_lds: Hist,
    /// Hits served by each evicted I-cache victim entry while resident.
    pub victim_reuse_ic: Hist,
    /// Sampled-simulation accounting (`System::with_sampling`); `None`
    /// for exact (fully detailed) runs. When present, `total_cycles`
    /// is an extrapolation — see [`SamplingMeta`].
    pub sampling: Option<SamplingMeta>,
    /// Per-tenant accounting under multi-tenancy
    /// (`ReachConfig::tenancy`), one entry per tenant in VM-ID order;
    /// empty for untenanted runs, whose export stays schema v4
    /// byte-identical (the field is introduced by schema v5).
    pub tenants: Vec<TenantStats>,
    /// Coalesced-entry accounting summed over every translation-holding
    /// structure; `None` when `ReachConfig::tlb_coalescing` is off, so
    /// non-coalescing exports stay on their previous schema version
    /// byte-identically (the field is introduced by schema v6).
    pub coalescing: Option<CoalescingStats>,
}

impl RunStats {
    /// Page-table walks per thousand *thread* instructions (Table 2's
    /// PTW-PKI).
    pub fn ptw_pki(&self) -> f64 {
        if self.thread_instructions == 0 {
            0.0
        } else {
            self.page_walks as f64 * 1000.0 / self.thread_instructions as f64
        }
    }

    /// Table 2 application category by PTW-PKI: High ≥ 20, Medium ≥ 1,
    /// else Low.
    pub fn category(&self) -> AppCategory {
        let pki = self.ptw_pki();
        if pki >= 20.0 {
            AppCategory::High
        } else if pki >= 1.0 {
            AppCategory::Medium
        } else {
            AppCategory::Low
        }
    }

    /// Overall L1 TLB hit ratio.
    pub fn l1_hit_ratio(&self) -> f64 {
        self.l1_tlb.hit_ratio()
    }

    /// Overall L2 TLB hit ratio (of requests that reached it).
    pub fn l2_hit_ratio(&self) -> f64 {
        self.l2_tlb.hit_ratio()
    }

    /// Victim-structure hits (LDS + I-cache).
    pub fn victim_hits(&self) -> u64 {
        self.lds_tx.hits + self.ic_tx.hits
    }

    /// Summary of per-kernel utilization samples as a sampler (useful
    /// for harnesses that need quantiles).
    pub fn kernel_utilization_sampler(&self) -> Sampler {
        let mut s = Sampler::new();
        for k in &self.kernels {
            s.record(k.icache_utilization_pct);
        }
        s
    }
}

/// Table 2's High/Medium/Low PTW-PKI classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppCategory {
    /// ≥ 20 walks per kilo-instruction.
    High,
    /// 1–20 walks per kilo-instruction.
    Medium,
    /// < 1 walk per kilo-instruction.
    Low,
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppCategory::High => write!(f, "H"),
            AppCategory::Medium => write!(f, "M"),
            AppCategory::Low => write!(f, "L"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptw_pki_and_category() {
        let mut s = RunStats {
            instructions: 1_000,
            thread_instructions: 1_000,
            page_walks: 40,
            ..Default::default()
        };
        assert!((s.ptw_pki() - 40.0).abs() < 1e-9);
        assert_eq!(s.category(), AppCategory::High);
        s.page_walks = 5;
        assert_eq!(s.category(), AppCategory::Medium);
        s.page_walks = 0;
        assert_eq!(s.category(), AppCategory::Low);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.ptw_pki(), 0.0);
        assert_eq!(s.victim_hits(), 0);
        assert_eq!(s.l1_hit_ratio(), 0.0);
    }

    #[test]
    fn category_display() {
        assert_eq!(AppCategory::High.to_string(), "H");
        assert_eq!(AppCategory::Medium.to_string(), "M");
        assert_eq!(AppCategory::Low.to_string(), "L");
    }

    #[test]
    fn epoch_delta_and_monotonicity() {
        let a = EpochStats {
            cycle: 100,
            translation_requests: 10,
            l1_hits: 6,
            l1_misses: 4,
            page_walks: 2,
            instructions: 50,
            resident_tx: 3,
            ..Default::default()
        };
        let b = EpochStats {
            cycle: 200,
            translation_requests: 25,
            l1_hits: 18,
            l1_misses: 7,
            page_walks: 2,
            instructions: 90,
            resident_tx: 1,
            ..Default::default()
        };
        assert!(b.monotone_from(&a));
        assert!(!a.monotone_from(&b));
        let d = b.delta(&a);
        assert_eq!(d.translation_requests, 15);
        assert_eq!(d.l1_hits, 12);
        assert_eq!(d.page_walks, 0);
        assert_eq!(d.cycle, 200, "delta keeps the end cycle");
        assert_eq!(d.resident_tx, 1, "gauge is not differenced");
    }

    #[test]
    fn kernel_sampler_collects_utilization() {
        let s = RunStats {
            kernels: vec![
                KernelStats {
                    name: "a".into(),
                    cycles: 1,
                    instructions: 1,
                    page_walks: 0,
                    icache_utilization_pct: 30.0,
                    lds_bytes_per_wg: 0,
                },
                KernelStats {
                    name: "b".into(),
                    cycles: 1,
                    instructions: 1,
                    page_walks: 0,
                    icache_utilization_pct: 70.0,
                    lds_bytes_per_wg: 0,
                },
            ],
            ..Default::default()
        };
        let mut sampler = s.kernel_utilization_sampler();
        assert_eq!(sampler.median(), 50.0);
    }
}
