//! Regenerates every table and figure. `--quick`/`--tiny` reduce the
//! scale; `--csv <dir>` additionally writes the main matrices as CSV
//! for external plotting; `--stats-out <path>` writes the full main
//! matrix (every cell's complete stats, epoch series included) as one
//! JSON document for `validate_stats` and downstream tooling;
//! `--percentiles` arms distribution recording for the exported
//! matrix, so every cell carries latency/lifetime histograms.
fn main() {
    let scale = scale_from_args();
    println!("{}", gtr_bench::figures::all(scale));
    let args: Vec<String> = std::env::args().collect();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).map(String::as_str).unwrap_or("results").to_string());
    let stats_out = args.iter().position(|a| a == "--stats-out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--stats-out needs a path");
                std::process::exit(2);
            })
            .to_string()
    });
    if csv_dir.is_none() && stats_out.is_none() {
        return;
    }
    // One matrix re-run feeds both export formats.
    let percentiles = args.iter().any(|a| a == "--percentiles");
    let m = gtr_bench::figures::main_matrix_opts(scale, percentiles);
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        std::fs::write(format!("{dir}/fig13b_improvement.csv"), m.improvement_csv())
            .expect("write csv");
        std::fs::write(
            format!("{dir}/fig14b_walks.csv"),
            m.normalized_csv(|s| s.page_walks as f64),
        )
        .expect("write csv");
        std::fs::write(
            format!("{dir}/fig13c_energy.csv"),
            m.normalized_csv(|s| s.dram_energy_nj),
        )
        .expect("write csv");
        eprintln!("CSV written to {dir}/");
    }
    if let Some(path) = stats_out {
        let mut doc = m.to_json().to_string();
        doc.push('\n');
        std::fs::write(&path, doc).expect("write stats JSON");
        eprintln!("matrix stats written to {path}");
    }
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
