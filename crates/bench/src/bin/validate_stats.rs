//! `validate_stats` — schema gate for machine-readable artifacts.
//!
//! Validates files produced by the `--stats-out` / `--trace` flags:
//!
//! * `validate_stats stats.json ...` — each file must be either one
//!   run-stats document (`run_app --stats-out`) or a matrix document
//!   (`all --stats-out`); every run record must parse back through
//!   `gtr_core::export::run_stats_from_json`, satisfy the epoch
//!   invariants (counters monotone, final epoch equals run totals),
//!   for schema-v2 documents the distribution invariants
//!   (attribution re-adds to the scalar counters, histogram totals
//!   agree with the attribution), and — when the record carries a
//!   schema-v3 `sampling` object — the sampling invariants
//!   (instruction/cycle partitions add up, extrapolation is
//!   internally consistent), and — when the record is a schema-v5
//!   tenanted document — the tenancy invariants (per-tenant counters
//!   sum to the run totals, VM-IDs are ordered, slowdowns are finite;
//!   TENANCY.md §4), and — when the record carries a schema-v6
//!   `coalescing` object — the coalescing invariants (coalesced
//!   entries never exceed inserts, span pages account for the
//!   coalescing they claim, the reach multiplier is a finite ratio
//!   ≥ 1). Matrix documents with a schema-v4
//!   `figures` array additionally have every figure entry checked
//!   (named, cell counts consistent, error bounds finite and
//!   non-negative, exact figures bound-free).
//! * `validate_stats --jsonl trace.jsonl ...` — each line must parse
//!   as a JSON object whose `type` is a known trace-event kind.
//!
//! Exits non-zero on the first invalid file set; `ci.sh` runs this
//! against a tiny-matrix export so schema drift fails the build.

use gtr_core::export::{
    check_coalescing_invariants, check_distribution_invariants, check_epoch_invariants,
    check_sampling_invariants, check_tenancy_invariants, run_stats_from_json,
};
use gtr_sim::json::Json;

const EVENT_KINDS: [&str; 8] = [
    "translation",
    "victim_insert",
    "victim_bypass",
    "lds_mode",
    "kernel_begin",
    "kernel_end",
    "kernel_flush",
    "shootdown",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a.starts_with("--") && a != "--jsonl") {
        eprintln!("usage: validate_stats <stats.json>... | validate_stats --jsonl <trace.jsonl>...");
        std::process::exit(2);
    }
    let jsonl = args.first().is_some_and(|a| a == "--jsonl");
    let files = if jsonl { &args[1..] } else { &args[..] };
    if files.is_empty() {
        eprintln!("no files given");
        std::process::exit(2);
    }
    let mut failures = 0;
    for path in files {
        let outcome = if jsonl { validate_jsonl(path) } else { validate_stats_file(path) };
        match outcome {
            Ok(n) => println!("{path}: OK ({n} {})", if jsonl { "events" } else { "run records" }),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Validates one stats JSON file; returns the number of run records.
fn validate_stats_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let j = Json::parse(&text)?;
    if j.get("baseline").is_some() {
        let mut count = 0;
        let baseline = j
            .get("baseline")
            .and_then(Json::as_arr)
            .ok_or("matrix `baseline` must be an array")?;
        for r in baseline {
            validate_run(r)?;
            count += 1;
        }
        let variants = j
            .get("variants")
            .and_then(Json::as_arr)
            .ok_or("matrix `variants` must be an array")?;
        for v in variants {
            let label = v.get("label").and_then(Json::as_str).ok_or("variant without label")?;
            let runs = v
                .get("runs")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("variant {label:?} has no `runs` array"))?;
            for r in runs {
                validate_run(r)?;
                count += 1;
            }
        }
        if let Some(figs) = j.get("figures") {
            validate_figures(figs, count)?;
        }
        Ok(count)
    } else {
        validate_run(&j)?;
        Ok(1)
    }
}

/// The optional schema-v4 `figures` array on matrix documents: every
/// entry must name a figure, count its cells consistently
/// (`sampled_cells <= cells`) and carry finite, non-negative error
/// bounds.
fn validate_figures(figs: &Json, matrix_cells: usize) -> Result<(), String> {
    let figs = figs.as_arr().ok_or("`figures` must be an array")?;
    if figs.is_empty() {
        return Err("`figures` array is empty".into());
    }
    for f in figs {
        let name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or("figure entry without a `name` string")?;
        let cells = f
            .get("cells")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("figure {name:?} has no `cells` count"))?;
        let sampled = f
            .get("sampled_cells")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("figure {name:?} has no `sampled_cells` count"))?;
        if sampled > cells {
            return Err(format!("figure {name:?}: sampled_cells {sampled} > cells {cells}"));
        }
        for key in ["error_bound_pct", "side_cache_error_bound_pct"] {
            let bound = f
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("figure {name:?} has no `{key}`"))?;
            if !bound.is_finite() || bound < 0.0 {
                return Err(format!("figure {name:?}: {key} = {bound} is not a valid bound"));
            }
            if sampled == 0 && bound != 0.0 {
                return Err(format!("figure {name:?}: exact cells cannot carry {key} = {bound}"));
            }
        }
    }
    // The matrix's own cells must appear among the figures (the main
    // matrix feeds Figs 13b/13c/14ab/15 — a figures array that never
    // mentions that many cells means the export and battery diverged).
    if !figs.iter().any(|f| {
        f.get("cells").and_then(Json::as_u64) == Some(matrix_cells as u64)
    }) {
        return Err(format!(
            "no figure accounts for the matrix's own {matrix_cells} cells"
        ));
    }
    Ok(())
}

/// One run record: must round-trip through the export schema, keep its
/// epoch series internally consistent, and (schema v2) carry
/// distributions that re-add to the scalar counters.
fn validate_run(j: &Json) -> Result<(), String> {
    let s = run_stats_from_json(j).ok_or("run record does not match the stats schema")?;
    let version = j
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("run record has no schema_version")?;
    let mut problems = check_epoch_invariants(&s);
    problems.extend(check_distribution_invariants(&s, version));
    problems.extend(check_sampling_invariants(&s));
    problems.extend(check_tenancy_invariants(&s));
    problems.extend(check_coalescing_invariants(&s));
    if problems.is_empty() {
        Ok(())
    } else {
        Err(format!("{}: {}", s.app, problems.join("; ")))
    }
}

/// Validates one JSONL trace file; returns the number of events.
fn validate_jsonl(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut count = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = j
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: event without a `type` string", lineno + 1))?;
        if !EVENT_KINDS.contains(&kind) {
            return Err(format!("line {}: unknown event type {kind:?}", lineno + 1));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no events in file".into());
    }
    Ok(count)
}
