//! # gtr-workloads
//!
//! Synthetic benchmark models reproducing the memory-access structure
//! of the paper's Table-2 applications (Polybench ATAX/BICG/MVT/GEV,
//! Rodinia NW/SRAD/BFS, Pannotia SSSP/PRK, and the GUPS
//! micro-benchmark).
//!
//! The real OpenCL binaries cannot run on a Rust simulator, so each
//! module generates an [`gtr_gpu::kernel::AppTrace`] with the same
//! *signature* as the original: kernel count and back-to-back
//! structure, LDS bytes requested per workgroup, instruction footprint
//! per kernel, page-level access pattern (streaming vs column-strided
//! vs random), footprint size relative to TLB reach, and inter-kernel
//! reuse. Those properties — not the arithmetic — determine every
//! result in the paper.
//!
//! All generation is seeded ([`gtr_sim::rng::SplitMix64`]): the same
//! [`scale::Scale`] always produces the identical trace.
//!
//! # Example
//!
//! ```
//! use gtr_workloads::scale::Scale;
//! use gtr_workloads::suite;
//!
//! let apps = suite::all(Scale::tiny());
//! assert_eq!(apps.len(), 10);
//! let atax = suite::by_name("ATAX", Scale::tiny()).unwrap();
//! assert_eq!(atax.kernels().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod gen;
pub mod graph;
pub mod scale;
pub mod suite;
