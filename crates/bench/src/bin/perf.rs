//! `perf` — the simulator-throughput regression harness.
//!
//! Measures wall-clock time and simulated-cycles-per-second for the
//! fixed tiny-scale main matrix (the sweep behind Figs 13-15) and
//! writes `BENCH_sim_throughput.json` at the repository root. The
//! baseline file is a **history**: a JSON array with one record per
//! measured commit, newest last; re-measuring appends (or replaces
//! the last record when HEAD hasn't moved), and `--check` gates
//! against the last committed record.
//!
//! Modes:
//!
//! * `cargo run --release -p gtr-bench --bin perf` — measure and
//!   append to the baseline history.
//! * `... --bin perf -- --check` — measure and compare against the
//!   last committed record without rewriting it; exits non-zero when
//!   throughput regressed more than the tolerance (used by `ci.sh`).
//! * `... --bin perf -- --dry-run` — measure and print only.
//! * `... --bin perf -- --paper [...]` — same three modes, but for the
//!   checkpointed interval-sampled paper-scale matrix; the baseline is
//!   `BENCH_matrix_paper.json` and the throughput unit is matrix
//!   cells per second. Adding `--exact` additionally sweeps the
//!   **unsampled** paper-scale matrix and records its cell throughput
//!   and cycle anchor in the report's `exact_*` fields (budget-gated
//!   in CI — every cell simulates in full).
//! * `... --bin perf -- --serve` — same three modes for `gtr-serve`
//!   result-cache latency: the tiny exact sweep is submitted
//!   cell-by-cell against an in-process server, cold (empty cache)
//!   then hot (memoized); the baseline is `BENCH_serve_latency.json`
//!   and `--check` gates machine-independent invariants (100% hot hit
//!   rate, one simulation per distinct cell, hot p50 >= 100x faster
//!   than cold).
//!
//! Any mode accepts `--threads N` to pin the matrix worker-thread
//! count (default: available parallelism; results are bit-identical
//! for any value), `--stats-out <path>` to write the measured
//! report JSON to a chosen file (the repo-root baseline is only
//! touched by the default measure mode), and `--prof <out.json>` to
//! write the measurement's host-profile Chrome trace (the harness
//! self-profiles either way — that's where the report's `phases`
//! come from — `--prof` just exports the timeline).

use gtr_bench::perf::{
    append_history, check_against, check_matrix_against, check_serve_against,
    latest_matrix_report, latest_report, latest_serve_report, measure_paper_workers,
    measure_serve, measure_workers, BASELINE_FILE, PAPER_BASELINE_FILE,
    REGRESSION_TOLERANCE_PCT, SERVE_BASELINE_FILE,
};
use gtr_workloads::scale::Scale;

/// `cpu_ms` is `None` when the platform can't separate CPU from wall
/// time; print that honestly instead of a fabricated number.
fn fmt_cpu_ms(cpu_ms: Option<f64>) -> String {
    match cpu_ms {
        Some(ms) => format!("{ms:.1} ms"),
        None => "n/a".to_string(),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let prof_out = args.iter().position(|a| a == "--prof").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--prof needs an output path for the Chrome trace");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        std::path::PathBuf::from(path)
    });
    let stats_out = args.iter().position(|a| a == "--stats-out").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--stats-out needs a path");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        path
    });
    let workers = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            if i + 1 >= args.len() {
                eprintln!("--threads needs a worker count");
                std::process::exit(2);
            }
            let n = args.remove(i + 1);
            args.remove(i);
            n.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--threads needs a numeric worker count (got {n:?})");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let check = args.iter().any(|a| a == "--check");
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let paper = args.iter().any(|a| a == "--paper");
    let exact = args.iter().any(|a| a == "--exact");
    let serve = args.iter().any(|a| a == "--serve");
    if let Some(bad) = args.iter().find(|a| {
        *a != "--check" && *a != "--dry-run" && *a != "--paper" && *a != "--exact" && *a != "--serve"
    }) {
        eprintln!(
            "unknown argument `{bad}` (expected --check, --dry-run, --paper, --exact, \
             --serve, --threads <N>, --stats-out <path> or --prof <out.json>)"
        );
        std::process::exit(2);
    }
    if exact && !paper {
        eprintln!("--exact only applies to --paper (tiny measurements are always exact)");
        std::process::exit(2);
    }
    if serve && paper {
        eprintln!("--serve and --paper are separate measurements; pick one");
        std::process::exit(2);
    }
    if serve {
        run_serve(check, dry_run, stats_out, workers);
        return;
    }
    if paper {
        run_paper(check, dry_run, stats_out, prof_out, workers, exact);
        return;
    }

    let path = gtr_bench::perf::repo_root().join(BASELINE_FILE);
    let history = std::fs::read_to_string(&path).unwrap_or_default();
    let baseline = latest_report(&history);

    eprintln!("measuring tiny-scale main matrix (4 variants x Table-2 suite)...");
    let report = measure_workers(Scale::tiny(), "tiny", workers);
    println!(
        "wall {:.1} ms | cpu {} | {} simulated cycles | {:.2} M simulated cycles/s (commit {})",
        report.wall_ms,
        fmt_cpu_ms(report.cpu_ms),
        report.sim_cycles,
        report.cycles_per_sec / 1e6,
        report.commit
    );
    gtr_bench::profile::finish(prof_out.as_deref());

    if let Some(out) = &stats_out {
        std::fs::write(out, report.to_json()).expect("write --stats-out JSON");
        eprintln!("report written to {out}");
    }

    if check {
        match check_against(baseline.as_ref(), &report) {
            Ok(verdict) => println!("OK: {verdict} (tolerance {REGRESSION_TOLERANCE_PCT}%)"),
            Err(msg) => {
                eprintln!("PERF REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if dry_run {
        print!("{}", report.to_json());
        return;
    }
    if let Some(base) = &baseline {
        let delta = (report.cycles_per_sec / base.cycles_per_sec - 1.0) * 100.0;
        println!("previous record: {:.2} M cycles/s ({delta:+.1}%)", base.cycles_per_sec / 1e6);
    }
    std::fs::write(&path, append_history(&history, &report.to_json()))
        .expect("write baseline JSON");
    println!("appended to {}", path.display());
}

/// The `--serve` variant of the harness: `gtr-serve` result-cache
/// latency, cold pass vs hot pass against an in-process server. The
/// gate checks invariants of the measured record (100% hot hit rate,
/// one simulation per distinct cell, hot p50 at least 100x faster
/// than cold) rather than machine-dependent latencies.
fn run_serve(check: bool, dry_run: bool, stats_out: Option<String>, workers: usize) {
    let path = gtr_bench::perf::repo_root().join(SERVE_BASELINE_FILE);
    let history = std::fs::read_to_string(&path).unwrap_or_default();
    let baseline = latest_serve_report(&history);

    eprintln!("measuring gtr-serve latency (tiny exact sweep, cold then hot)...");
    let report = measure_serve(workers);
    println!(
        "{} cells | cold p50 {} us | hot p50 {} us ({:.0}x) | hot hits {:.1}% | {} simulations (commit {})",
        report.cells,
        report.cold_p50_us,
        report.hot_p50_us,
        report.speedup_p50,
        report.hot_hit_rate_pct,
        report.simulations,
        report.commit
    );

    if let Some(out) = &stats_out {
        std::fs::write(out, report.to_json()).expect("write --stats-out JSON");
        eprintln!("report written to {out}");
    }

    if check {
        match check_serve_against(baseline.as_ref(), &report) {
            Ok(verdict) => println!("OK: {verdict}"),
            Err(msg) => {
                eprintln!("SERVE REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if dry_run {
        print!("{}", report.to_json());
        return;
    }
    if let Some(base) = &baseline {
        println!("previous record: hot p50 {} us (commit {})", base.hot_p50_us, base.commit);
    }
    std::fs::write(&path, append_history(&history, &report.to_json()))
        .expect("write baseline JSON");
    println!("appended to {}", path.display());
}

/// The `--paper` variant of the harness: the checkpointed sampled
/// paper-scale matrix, measured in matrix cells per second, with an
/// optional exact-mode sweep alongside.
fn run_paper(
    check: bool,
    dry_run: bool,
    stats_out: Option<String>,
    prof_out: Option<std::path::PathBuf>,
    workers: usize,
    exact: bool,
) {
    let path = gtr_bench::perf::repo_root().join(PAPER_BASELINE_FILE);
    let history = std::fs::read_to_string(&path).unwrap_or_default();
    let baseline = latest_matrix_report(&history);

    eprintln!("measuring sampled paper-scale main matrix (shared warmup checkpoints)...");
    if exact {
        eprintln!("(--exact: the full unsampled matrix is swept as well)");
    }
    let report = measure_paper_workers(workers, exact);
    println!(
        "wall {:.1} ms | cpu {} | {} cells | {} simulated cycles | {:.2} cells/s (commit {})",
        report.wall_ms,
        fmt_cpu_ms(report.cpu_ms),
        report.cells,
        report.sim_cycles,
        report.cells_per_sec,
        report.commit
    );
    if let (Some(cycles), Some(rate)) = (report.exact_sim_cycles, report.exact_cells_per_sec) {
        println!("exact: {cycles} simulated cycles | {rate:.2} cells/s");
    }
    gtr_bench::profile::finish(prof_out.as_deref());

    if let Some(out) = &stats_out {
        std::fs::write(out, report.to_json()).expect("write --stats-out JSON");
        eprintln!("report written to {out}");
    }

    if check {
        match check_matrix_against(baseline.as_ref(), &report) {
            Ok(verdict) => println!("OK: {verdict} (tolerance {REGRESSION_TOLERANCE_PCT}%)"),
            Err(msg) => {
                eprintln!("PERF REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if dry_run {
        print!("{}", report.to_json());
        return;
    }
    if let Some(base) = &baseline {
        let delta = (report.cells_per_sec / base.cells_per_sec - 1.0) * 100.0;
        println!("previous record: {:.2} cells/s ({delta:+.1}%)", base.cells_per_sec);
    }
    std::fs::write(&path, append_history(&history, &report.to_json()))
        .expect("write baseline JSON");
    println!("appended to {}", path.display());
}
