//! Property-based tests (proptest) over the core data structures'
//! invariants.

use proptest::prelude::*;

use gpu_translation_reach::core_arch::compress::TagGroup;
use gpu_translation_reach::core_arch::config::{Replacement, SegmentSize, TxPerLine};
use gpu_translation_reach::core_arch::icache_tx::TxIcache;
use gpu_translation_reach::core_arch::lds_tx::{LdsInsert, SegmentMode, TxLds};
use gpu_translation_reach::sim::resource::Timeline;
use gpu_translation_reach::vm::addr::{PageSize, Ppn, Translation, TranslationKey, VirtAddr, Vpn};
use gpu_translation_reach::vm::coalescer::CoalescedAccess;
use gpu_translation_reach::vm::page_table::PageTable;
use gpu_translation_reach::vm::tlb::{Tlb, TlbConfig};

fn tx(v: u64) -> Translation {
    Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v ^ 0xABCD))
}

proptest! {
    /// Every admitted tag lies within the signed delta window of the
    /// group's base; conflicts are rejected, never mis-stored.
    #[test]
    fn tag_group_window_invariant(
        delta_bits in 2u32..24,
        tags in prop::collection::vec(0u64..1u64 << 40, 1..64),
    ) {
        let mut g = TagGroup::new(delta_bits);
        for t in tags {
            let admitted = g.try_admit(t);
            if admitted {
                let base = g.base().expect("non-empty group has a base");
                let delta = t as i128 - base as i128;
                let half = 1i128 << (delta_bits - 1);
                prop_assert!((-half..half).contains(&delta));
            }
        }
    }

    /// A TLB never exceeds its capacity, and a just-inserted key is
    /// always findable.
    #[test]
    fn tlb_capacity_and_residency(
        entries_log in 2u32..7,
        assoc_log in 0u32..4,
        keys in prop::collection::vec(0u64..10_000, 1..300),
    ) {
        let entries = 1usize << entries_log;
        let assoc = (1usize << assoc_log).min(entries);
        let mut tlb = Tlb::new(TlbConfig::set_associative(entries, assoc, 1));
        for v in keys {
            tlb.insert(tx(v));
            prop_assert!(tlb.len() <= entries);
            prop_assert!(
                tlb.probe(TranslationKey::for_vpn(Vpn(v))).is_some(),
                "freshly inserted key must be resident"
            );
        }
    }

    /// Timeline reservations never overlap, regardless of arrival
    /// order and skew.
    #[test]
    fn timeline_reservations_disjoint(
        requests in prop::collection::vec((0u64..100_000, 1u64..200), 1..200),
    ) {
        let mut tl = Timeline::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for (at, service) in requests {
            let start = tl.reserve(at, service);
            prop_assert!(start >= at, "reservation cannot start before arrival");
            let end = start + service;
            for &(s, e) in &intervals {
                prop_assert!(end <= s || start >= e,
                    "overlap: [{start},{end}) with [{s},{e})");
            }
            intervals.push((start, end));
        }
    }

    /// Coalescing yields unique pages covering exactly the lanes' pages.
    #[test]
    fn coalescer_pages_exact(
        addrs in prop::collection::vec(0u64..1u64 << 44, 1..64),
    ) {
        let lanes: Vec<VirtAddr> = addrs.iter().map(|&a| VirtAddr::new(a)).collect();
        let c = CoalescedAccess::from_lanes(&lanes, PageSize::Size4K);
        let expected: std::collections::HashSet<u64> =
            lanes.iter().map(|a| a.vpn(PageSize::Size4K).0).collect();
        let got: std::collections::HashSet<u64> = c.pages.iter().map(|p| p.0).collect();
        prop_assert_eq!(expected.clone(), got);
        prop_assert_eq!(c.pages.len(), expected.len(), "no duplicates");
    }

    /// Page-table mapping is a bijection onto distinct frames, and walk
    /// paths always end at the mapped frame.
    #[test]
    fn page_table_bijective_and_walkable(
        vpns in prop::collection::hash_set(0u64..1u64 << 30, 1..100),
    ) {
        let mut pt = PageTable::new(PageSize::Size4K);
        let mut frames = std::collections::HashSet::new();
        for &v in &vpns {
            let t = pt.map_vpn(Vpn(v));
            prop_assert!(frames.insert(t.ppn), "frame reused");
        }
        for &v in &vpns {
            let path = pt.walk_path(Vpn(v)).expect("mapped");
            prop_assert_eq!(path.steps.len(), 4);
            prop_assert_eq!(Some(path.ppn), pt.translate(Vpn(v)));
        }
    }

    /// The reconfigurable LDS never stores translations in App-mode
    /// segments and never exceeds its way capacity; app allocate /
    /// release round-trips restore usable capacity.
    #[test]
    fn tx_lds_mode_safety(
        ops in prop::collection::vec((0u64..4096, 0u8..4), 1..400),
    ) {
        let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
        let cap = lds.segment_count() * lds.ways();
        // Live application allocations, mirroring the front-end
        // scheduler's contract: only allocated blocks are released.
        let mut live: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (v, op) in ops {
            match op {
                0 | 1 => {
                    let _ = lds.insert(tx(v));
                }
                2 => {
                    let base = (((v as u32) % 512) * 32) & !255;
                    if live.insert(base) {
                        lds.on_app_allocate(base, 256);
                    }
                }
                _ => {
                    let base = (((v as u32) % 512) * 32) & !255;
                    if live.remove(&base) {
                        lds.on_app_release(base, 256);
                    }
                }
            }
            prop_assert!(lds.resident() <= cap);
            // An App segment must always bypass inserts.
            if lds.segment_mode(tx(v).key) == SegmentMode::App {
                prop_assert_eq!(lds.insert(tx(v)), LdsInsert::Bypassed);
            }
        }
    }

    /// The reconfigurable I-cache keeps instruction fetches correct no
    /// matter how translations churn: a fetched line always hits
    /// immediately afterwards.
    #[test]
    fn tx_icache_instruction_correctness(
        ops in prop::collection::vec((0u64..2048, prop::bool::ANY), 1..400),
    ) {
        let mut ic = TxIcache::new(
            16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware,
        );
        for (v, is_inst) in ops {
            if is_inst {
                ic.fetch(v);
                prop_assert!(ic.fetch(v), "immediate refetch must hit");
            } else {
                let _ = ic.insert_tx(tx(v));
            }
            prop_assert!(ic.resident_tx() <= ic.line_count() * ic.tx_slots());
        }
    }

    /// Under the instruction-aware policy translations NEVER evict
    /// instruction lines (§4.3.2 rule 2).
    #[test]
    fn instruction_aware_never_evicts_instructions(
        inst_lines in prop::collection::vec(0u64..2048, 1..64),
        tx_vpns in prop::collection::vec(0u64..1u64 << 20, 1..256),
    ) {
        let mut ic = TxIcache::new(
            16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware,
        );
        for &l in &inst_lines {
            ic.fetch(l);
        }
        let inst_before = ic.inst_lines();
        for v in tx_vpns {
            let _ = ic.insert_tx(tx(v));
        }
        prop_assert_eq!(ic.inst_lines(), inst_before);
        prop_assert_eq!(ic.stats().inst_evicted_by_tx, 0);
    }
}
