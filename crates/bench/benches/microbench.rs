//! Micro-benchmarks of the hot simulation structures (self-timed).
//!
//! These measure *simulator* throughput (how fast the models run), not
//! simulated performance — the paper's figures come from the `figures`
//! bench target and the `fig*` binaries.
//!
//! This is a custom `harness = false` target with its own std-only
//! timing loop (calibrated batch count, median-of-5 runs) so it works
//! in offline environments where `criterion` cannot be downloaded.
//! Run with `cargo bench -p gtr-bench --features criterion-benches`.

use std::hint::black_box;
use std::time::Instant;

use gtr_core::compress::TagGroup;
use gtr_core::config::{Replacement, SegmentSize, TxPerLine};
use gtr_core::icache_tx::TxIcache;
use gtr_core::lds_tx::TxLds;
use gtr_mem::dram::{Dram, DramConfig};
use gtr_vm::addr::{PageSize, Ppn, Translation, TranslationKey, VirtAddr, Vpn};
use gtr_vm::coalescer::CoalescedAccess;
use gtr_vm::page_table::PageTable;
use gtr_vm::tlb::{Tlb, TlbConfig};

/// Runs `f` in timed batches until ~50 ms of samples accumulate and
/// prints the median per-iteration cost.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and estimate a batch size targeting ~5 ms per sample.
    let t = Instant::now();
    let mut probe = 0u64;
    while t.elapsed().as_millis() < 5 {
        f();
        probe += 1;
    }
    let batch = probe.max(1);
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (scaled, unit) = if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "us")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<34} {scaled:>10.2} {unit}/iter  ({batch} iters/sample)");
}

fn key(v: u64) -> TranslationKey {
    TranslationKey::for_vpn(Vpn(v))
}

fn tx(v: u64) -> Translation {
    Translation::new(key(v), Ppn(v + 1))
}

fn bench_tlb() {
    let mut tlb = Tlb::new(TlbConfig::set_associative(512, 16, 188));
    for v in 0..512 {
        tlb.insert(tx(v));
    }
    let mut v = 0u64;
    bench("tlb_lookup_hit_512e_16w", || {
        v = (v + 1) % 512;
        black_box(tlb.lookup(key(v)));
    });
    let mut tlb = Tlb::new(TlbConfig::set_associative(512, 16, 188));
    let mut v = 0u64;
    bench("tlb_insert_evict_cycle", || {
        v += 1;
        black_box(tlb.insert(tx(v)));
    });
}

fn bench_compression() {
    let mut g = TagGroup::icache();
    bench("base_delta_admit_retire", || {
        if g.try_admit(black_box(1000)) {
            g.retire();
        }
    });
}

fn bench_lds_tx() {
    let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
    let mut v = 0u64;
    bench("tx_lds_insert_lookup", || {
        v += 1;
        lds.insert(tx(v));
        black_box(lds.lookup(key(v)));
    });
}

fn bench_icache_tx() {
    let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
    ic.fetch(7);
    bench("tx_icache_fetch_hit", || {
        black_box(ic.fetch(7));
    });
    let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
    let mut v = 0u64;
    bench("tx_icache_insert_lookup", || {
        v += 1;
        ic.insert_tx(tx(v));
        black_box(ic.lookup_tx(key(v)));
    });
}

fn bench_dram() {
    let mut dram = Dram::new(DramConfig::default());
    let mut t = 0u64;
    let mut line = 0u64;
    bench("dram_access_streaming", || {
        line += 1;
        t = black_box(dram.read_line(t, line).0);
    });
}

fn bench_page_table() {
    let mut pt = PageTable::new(PageSize::Size4K);
    pt.map_range(VirtAddr::new(0), 4096);
    let mut v = 0u64;
    bench("page_table_walk_path", || {
        v = (v + 1) % 4096;
        black_box(pt.walk_path(Vpn(v)));
    });
}

fn bench_coalescer() {
    let addrs: Vec<VirtAddr> = (0..64u64).map(|i| VirtAddr::new(i * 4096 * 3)).collect();
    bench("coalesce_64_divergent_lanes", || {
        black_box(CoalescedAccess::from_lanes(&addrs, PageSize::Size4K));
    });
}

fn bench_system() {
    use gtr_core::config::ReachConfig;
    use gtr_core::system::System;
    use gtr_gpu::config::GpuConfig;
    use gtr_workloads::{scale::Scale, suite};
    let app = suite::by_name("SRAD", Scale::tiny()).expect("known app");
    bench("system_run_srad_tiny_baseline", || {
        let stats = System::new(GpuConfig::default(), ReachConfig::baseline()).run(black_box(&app));
        black_box(stats.total_cycles);
    });
    bench("system_run_srad_tiny_ic_lds", || {
        let stats =
            System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(black_box(&app));
        black_box(stats.total_cycles);
    });
}

fn main() {
    // Minimal `cargo bench -- <filter>` support: any non-flag argument
    // selects benchmark groups by substring match.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let groups: [(&str, fn()); 8] = [
        ("tlb", bench_tlb),
        ("compression", bench_compression),
        ("lds_tx", bench_lds_tx),
        ("icache_tx", bench_icache_tx),
        ("dram", bench_dram),
        ("page_table", bench_page_table),
        ("coalescer", bench_coalescer),
        ("system", bench_system),
    ];
    for (name, f) in groups {
        if filter.is_empty() || filter.iter().any(|s| name.contains(s.as_str())) {
            f();
        }
    }
}
