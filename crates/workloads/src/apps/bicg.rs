//! BICG (Polybench): `s = Aᵀ r; q = A p`.
//!
//! Two kernels, never back-to-back. The `Aᵀ r` kernel is
//! column-strided (like ATAX kernel 2); the `A p` kernel mixes row
//! streaming with a second, offset column sweep, so both kernels
//! pressure the TLB — BICG matches ATAX's ~440% gain in Fig 13b.

use gtr_gpu::kernel::AppTrace;

use crate::gen::{column_sweep_kernel, row_stream_kernel};
use crate::scale::Scale;

/// Matrix dimension: 1360 × 1360 × 4 B ≈ 1806 pages — same regime as
/// ATAX (beyond L2 TLB and LDS-alone reach, within IC and combined
/// reach); BICG tracks ATAX in Fig 13b.
pub const N: u64 = 1408;

/// VA base of the matrix.
pub const MATRIX_BASE: u64 = 0x1_0000_0000;

/// VA base of the p/q/r/s vectors (right after the matrix).
pub const VECTOR_BASE: u64 = MATRIX_BASE + 0xA0_0000;

/// Builds the BICG trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = N * 4;
    let waves = 32;
    let k1 = column_sweep_kernel(
        "bicg_kernel1",
        48,
        MATRIX_BASE,
        row_bytes,
        N,
        waves,
        4,
        scale.count(12),
        8,
    );
    // Second kernel: mostly streaming, with a shorter column sweep
    // over the upper half of the matrix.
    let mut k2 = row_stream_kernel(
        "bicg_kernel2",
        80,
        MATRIX_BASE,
        VECTOR_BASE,
        waves,
        4,
        scale.count(32),
        8,
    );
    let col = column_sweep_kernel(
        "bicg_kernel2",
        80,
        MATRIX_BASE + (N / 2) * row_bytes,
        row_bytes,
        N / 2,
        waves / 2,
        4,
        scale.count(8),
        8,
    );
    // Merge the column phase's workgroups into kernel 2.
    let mut wgs = k2.workgroups().to_vec();
    wgs.extend(col.workgroups().iter().cloned());
    k2 = gtr_gpu::kernel::KernelDesc::new("bicg_kernel2", 80, 0, wgs);
    AppTrace::new("BICG", vec![k1, k2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 2);
        assert!(!app.has_back_to_back_kernels());
        assert!(app.kernels()[1].total_waves() > app.kernels()[0].total_waves() / 2);
    }

    #[test]
    fn first_kernel_column_strided() {
        let app = build(Scale::tiny());
        let k1 = &app.kernels()[0];
        assert!(k1.total_ops() > 0);
        assert_eq!(k1.name(), "bicg_kernel1");
    }

    #[test]
    fn deterministic() {
        assert_eq!(build(Scale::tiny()), build(Scale::tiny()));
    }
}
