//! Developer probe: detailed per-app counters under one config.
use gtr_bench::harness::run_one;
use gtr_core::config::ReachConfig;
use gtr_gpu::config::GpuConfig;
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "GEV".into());
    let app = suite::by_name(&name, Scale::quick()).unwrap();
    for (label, reach) in [
        ("baseline", ReachConfig::baseline()),
        ("lds", ReachConfig::lds_only()),
        ("ic", ReachConfig::ic_only()),
        ("ic+lds", ReachConfig::ic_plus_lds()),
        ("ic+lds-hh", ReachConfig::ic_plus_lds().with_lds_home_hashing()),
    ] {
        let s = run_one(&app, GpuConfig::default(), reach);
        println!(
            "{label:>9}: cyc={:>12} treq={:>9} l1={}/{} l2={}/{} ldsTx={}/{} icTx={}/{} walks={} peak={} dram={}",
            s.total_cycles, s.translation_requests,
            s.l1_tlb.hits, s.l1_tlb.misses,
            s.l2_tlb.hits, s.l2_tlb.misses,
            s.lds_tx.hits, s.lds_tx.misses,
            s.ic_tx.hits, s.ic_tx.misses,
            s.page_walks, s.peak_tx_entries, s.dram_accesses,
        );
    }
}
