//! Needleman-Wunsch (Rodinia): dynamic-programming sequence alignment.
//!
//! Table 2: 255 launches of the *same* kernel back-to-back — the one
//! app where the §4.3.3 flush optimization must NOT fire — with LDS
//! tiles (2112 B per workgroup) and a Medium PTW-PKI. Each launch
//! processes one anti-diagonal band: tile loads stream, but the
//! vertical dependency reads the previous row block with a page-sized
//! stride, giving NW its moderate TLB pressure.

use gtr_gpu::kernel::{AppTrace, KernelDesc};

use crate::gen::{into_workgroups, WaveBuilder};
use crate::scale::Scale;

/// DP matrix dimension (2048² × 4 B = 4096 pages).
pub const N: u64 = 2048;

/// VA base of the DP matrix.
pub const MATRIX_BASE: u64 = 0x1_0000_0000;

/// LDS bytes per workgroup (tile + reference column).
pub const LDS_BYTES: u32 = 2112;

/// Builds the NW trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = N * 4;
    let launches = scale.kernels(255);
    let mut kernels = Vec::with_capacity(launches);
    for diag in 0..launches as u64 {
        let waves = 8usize;
        let mut programs = Vec::with_capacity(waves);
        // All waves of one launch work a shared anti-diagonal band that
        // shifts launch-to-launch: per-launch footprint is a few
        // hundred pages (Medium PTW-PKI), revisited by the next few
        // launches (inter-kernel reuse the reconfigurable reach keeps).
        let band_row = (diag * 5) % (N / 64);
        let band_base = MATRIX_BASE + band_row * 64 * row_bytes;
        for w in 0..waves as u64 {
            let mut b = WaveBuilder::new(5);
            let tile_base = band_base + (w % 8) * 8 * row_bytes;
            b.lds_write(((w as u32) % 4) * 512);
            b.barrier();
            for i in 0..scale.count(6) as u64 {
                // Horizontal neighbors stream...
                b.stream_read(tile_base + i * 256);
                // ...the vertical dependency strides across the band.
                b.column_read(tile_base + i * 4 + (w % 2) * 32 * row_bytes, row_bytes);
                b.lds_read((((w + i) as u32) % 4) * 512);
            }
            b.barrier();
            b.stream_write(tile_base);
            programs.push(b.build());
        }
        kernels.push(KernelDesc::new(
            "nw_kernel1",
            224,
            LDS_BYTES,
            into_workgroups(programs, 2),
        ));
    }
    AppTrace::new("NW", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_same_kernel() {
        let app = build(Scale::tiny());
        assert!(app.kernels().len() >= 2);
        assert!(app.has_back_to_back_kernels());
        assert_eq!(app.distinct_kernels(), 1);
    }

    #[test]
    fn paper_scale_has_255_launches() {
        assert_eq!(build(Scale::paper()).kernels().len(), 255);
    }

    #[test]
    fn uses_lds() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels()[0].lds_bytes_per_wg(), LDS_BYTES);
        let wave = &app.kernels()[0].workgroups()[0].waves()[0];
        assert!(wave.ops().iter().any(|o| matches!(o, gtr_gpu::ops::Op::Lds { .. })));
        assert!(wave.ops().iter().any(|o| matches!(o, gtr_gpu::ops::Op::Barrier)));
    }
}
