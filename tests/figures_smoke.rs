//! Smoke tests over the experiment harnesses: every figure generator
//! must run at tiny scale **in both execution modes** (exact and
//! checkpointed interval sampling), produce the rows the paper
//! reports, and stay inside a per-figure wall-clock budget.
//!
//! The sampled runs are asserted to have actually sampled
//! ([`figures::battery`] reports per-figure `sampled_cells`), so a
//! silent fallback to exact simulation — the failure mode that would
//! quietly turn the minutes-scale paper regeneration back into hours
//! — fails CI here rather than being discovered at paper scale.

use std::time::{Duration, Instant};

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::bench::harness::RunMode;
use gpu_translation_reach::workloads::scale::Scale;

/// Wall-clock ceiling per figure per mode at tiny scale. Generous
/// enough for unoptimized CI builds, but far below what any figure
/// would cost if it silently ran at paper scale.
const FIGURE_BUDGET: Duration = Duration::from_secs(240);

fn tiny() -> Scale {
    Scale::tiny()
}

fn both_modes() -> [(&'static str, RunMode); 2] {
    [
        ("exact", RunMode::exact()),
        ("sampled", RunMode::sampled(figures::sampling_for(Scale::tiny()))),
    ]
}

/// Runs one figure in one mode under the budget, returning its text.
fn figure(name: &str, mode_name: &str, f: impl FnOnce() -> String) -> String {
    let t = Instant::now();
    let out = f();
    let elapsed = t.elapsed();
    assert!(
        elapsed < FIGURE_BUDGET,
        "{name} ({mode_name}) took {elapsed:?}, over the {FIGURE_BUDGET:?} budget"
    );
    assert!(!out.is_empty(), "{name} ({mode_name}) produced no output");
    out
}

#[test]
fn table1_lists_the_machine() {
    let t = figures::table1();
    for needle in ["8 CUs", "512 entries", "16-way", "32 walkers", "DDR3-1600"] {
        assert!(t.contains(needle), "Table 1 missing {needle:?}:\n{t}");
    }
}

#[test]
fn table2_covers_all_apps_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("table2", mode_name, || figures::table2_mode(tiny(), &mode));
        for app in ["ATAX", "GEV", "MVT", "BICG", "NW", "SRAD", "BFS", "SSSP", "PRK", "GUPS"] {
            assert!(t.contains(app), "Table 2 ({mode_name}) missing {app}");
        }
    }
}

#[test]
fn fig02_03_sweeps_l2_sizes_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("fig02_03", mode_name, || figures::fig02_03_mode(tiny(), &mode));
        for needle in ["Fig 2", "Fig 3", "L2-TLB-8K", "Perfect-L2-TLB", "GeoMean"] {
            assert!(t.contains(needle), "({mode_name}) missing {needle:?}");
        }
    }
}

#[test]
fn fig04_05_reports_distributions_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("fig04_05", mode_name, || figures::fig04_05_mode(tiny(), &mode));
        for needle in ["Fig 4a", "Fig 4b", "Fig 5a", "Fig 5b", "med"] {
            assert!(t.contains(needle), "({mode_name}) missing {needle:?}");
        }
    }
}

#[test]
fn fig11_reports_per_kernel_series_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("fig11", mode_name, || figures::fig11_mode(tiny(), &mode));
        assert!(t.contains("NW"), "({mode_name})");
        assert!(t.contains("kernels]"), "({mode_name})");
    }
}

#[test]
fn fig13a_has_all_four_variants_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("fig13a", mode_name, || figures::fig13a_mode(tiny(), &mode));
        for needle in ["IC-1tx/way", "IC-8tx-naive-repl", "IC-8tx-instr-aware", "IC-8tx-IA+flush"]
        {
            assert!(t.contains(needle), "({mode_name}) missing {needle:?}");
        }
    }
}

#[test]
fn main_matrix_feeds_fig13b_13c_14_15_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let m = figures::main_matrix_mode(tiny(), false, &mode);
        let f13b = figure("fig13b", mode_name, || figures::fig13b_from(&m));
        assert!(f13b.contains("IC+LDS"));
        assert!(f13b.contains("High+Medium-only geomeans"));
        let f13c = figure("fig13c", mode_name, || figures::fig13c_from(&m));
        assert!(f13c.contains("DRAM energy"));
        let f14 = figure("fig14ab", mode_name, || figures::fig14ab_from(&m));
        assert!(f14.contains("Fig 14a"));
        assert!(f14.contains("Fig 14b"));
        let f15 = figure("fig15", mode_name, || figures::fig15_from(&m));
        assert!(f15.contains("Fig 15"));
    }
}

#[test]
fn fig14c_covers_page_sizes_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("fig14c", mode_name, || figures::fig14c_mode(tiny(), &mode));
        for needle in ["4K", "64K", "2M"] {
            assert!(t.contains(needle), "({mode_name}) missing {needle:?}");
        }
    }
}

#[test]
fn fig16_sections_render_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let a = figure("fig16a", mode_name, || figures::fig16a_mode(tiny(), &mode));
        assert!(a.contains("1-CU-sharers") && a.contains("8-CU-sharers"), "({mode_name})");
        let b = figure("fig16b", mode_name, || figures::fig16b_mode(tiny(), &mode));
        assert!(b.contains("IC_LDS+100cy"), "({mode_name})");
        let c = figure("fig16c", mode_name, || figures::fig16c_mode(tiny(), &mode));
        assert!(c.contains("DUCATI+IC+LDS"), "({mode_name})");
        let s = figure("ablation_segment_size", mode_name, || {
            figures::ablation_segment_size_mode(tiny(), &mode)
        });
        assert!(s.contains("64B-seg"), "({mode_name})");
    }
}

#[test]
fn figure_output_is_deterministic() {
    assert_eq!(figures::table2(tiny()), figures::table2(tiny()));
    assert_eq!(figures::fig13b(tiny()), figures::fig13b(tiny()));
}

#[test]
fn multi_app_experiment_renders_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("multi_app", mode_name, || figures::multi_app_mode(tiny(), &mode));
        assert!(t.contains("ATAX+BICG"), "({mode_name})");
        assert!(t.contains("IC+LDS"), "({mode_name})");
    }
}

#[test]
fn ablations_render_in_both_modes() {
    for (mode_name, mode) in both_modes() {
        let t = figure("ablations", mode_name, || figures::ablations_mode(tiny(), &mode));
        assert!(t.contains("prefetch-buffer"), "({mode_name})");
        assert!(t.contains("without PWCs"), "({mode_name})");
        assert!(t.contains("without coalescer"), "({mode_name})");
    }
}

/// The anti-fallback gate: a sampled battery must sample every
/// simulated cell of every figure and report finite bounds, and an
/// exact battery must sample none — so the `--sample` fast path can
/// never silently degrade to exact simulation (or vice versa).
#[test]
fn sampled_battery_samples_every_cell_and_exact_samples_none() {
    let mode = RunMode::sampled(figures::sampling_for(tiny()));
    let t = Instant::now();
    let sampled = figures::battery(tiny(), &mode);
    let elapsed = t.elapsed();
    assert!(
        elapsed < FIGURE_BUDGET * 4,
        "full sampled battery took {elapsed:?}, over the {:?} budget",
        FIGURE_BUDGET * 4
    );
    assert_eq!(sampled.len(), 17, "the battery covers every figure family");
    for f in &sampled {
        if f.cells == 0 {
            continue; // Table 1 runs no simulation.
        }
        assert_eq!(
            f.sampled_cells, f.cells,
            "{}: {} of {} cells silently fell back to exact simulation",
            f.name,
            f.cells - f.sampled_cells,
            f.cells
        );
        assert!(
            f.error_bound_pct.is_finite() && f.error_bound_pct >= 0.0,
            "{}: bad error bound {}",
            f.name,
            f.error_bound_pct
        );
    }
    assert!(
        sampled.iter().any(|f| f.name == "fig16c" && f.side_cache_error_bound_pct > 0.0),
        "the DUCATI figure must report side-cache divergence under sampling"
    );

    let exact = figures::battery(tiny(), &RunMode::exact());
    for f in &exact {
        assert_eq!(f.sampled_cells, 0, "{}: exact battery must not sample", f.name);
        assert_eq!(f.error_bound_pct, 0.0, "{}: exact cells carry no bound", f.name);
    }
}
