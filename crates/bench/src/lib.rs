//! # gtr-bench
//!
//! Experiment harnesses that regenerate **every table and figure** of
//! the paper's evaluation (§3 motivation and §6 results).
//!
//! Each figure is a pure function in [`figures`] returning its printed
//! report, so the same code backs:
//!
//! * the `fig*`/`table2`/`all` binaries (`cargo run -p gtr-bench --bin all`),
//! * the `figures` bench target (`cargo bench -p gtr-bench --bench figures`),
//! * assertions in the integration-test suite.
//!
//! [`harness`] holds the shared machinery: run matrices over
//! (application × configuration), a work-stealing worker pool, geometric
//! means, and table formatting. [`perf`] is the simulator-throughput
//! regression harness behind the `perf` binary and
//! `BENCH_sim_throughput.json`. [`analyze`] is the trace-replay
//! consistency checker and stats differ behind the `gtr-analyze`
//! binary. [`profile`] is the consuming half of the host-side span
//! profiler ([`gtr_sim::prof`]): the `--prof` flag plumbing,
//! Chrome-trace summarization, and BENCH-history trend reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod figures;
pub mod harness;
pub mod perf;
pub mod pool;
pub mod profile;
pub mod serve;
