//! Regenerates every table and figure. `--quick`/`--tiny` reduce the
//! scale; `--csv <dir>` additionally writes the main matrices as CSV
//! for external plotting; `--stats-out <path>` writes the full main
//! matrix (every cell's complete stats, epoch series included) as one
//! compact JSON document for `validate_stats` and downstream tooling
//! (`--pretty` switches to indented output for human reading);
//! `--percentiles` arms distribution recording for the exported
//! matrix, so every cell carries latency/lifetime histograms.
//!
//! `--sample` replaces the full figure battery with the checkpointed,
//! interval-sampled main matrix (Figs 13b/13c/14ab/15): one warmup
//! checkpoint is captured per `(app, GPU config)` pair and shared
//! across all four variants, and each cell alternates detailed and
//! fast-forwarded intervals. This is how the paper-scale matrix runs
//! in minutes instead of hours; `--checkpoint-dir <dir>` caches the
//! captured checkpoints on disk so repeat sweeps skip the warmup
//! entirely.

use gtr_bench::harness::RunMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args();
    let sample = args.iter().any(|a| a == "--sample");
    let pretty = args.iter().any(|a| a == "--pretty");
    let percentiles = args.iter().any(|a| a == "--percentiles");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).map(String::as_str).unwrap_or("results").to_string());
    let stats_out = args.iter().position(|a| a == "--stats-out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--stats-out needs a path");
                std::process::exit(2);
            })
            .to_string()
    });
    let checkpoint_dir = args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--checkpoint-dir needs a path");
                std::process::exit(2);
            })
            .to_string()
    });

    let m = if sample {
        // Sampled mode: the main matrix only, with shared warmup
        // checkpoints — the paper-scale fast path.
        let mut mode = RunMode::sampled(gtr_bench::figures::sampling_for(scale));
        if let Some(dir) = &checkpoint_dir {
            mode = mode.with_checkpoint_dir(dir);
        }
        let t = std::time::Instant::now();
        let m = gtr_bench::figures::main_matrix_mode(scale, percentiles, &mode);
        let wall = t.elapsed();
        println!("{}", gtr_bench::figures::fig13b_from(&m));
        println!("{}", gtr_bench::figures::fig13c_from(&m));
        println!("{}", gtr_bench::figures::fig14ab_from(&m));
        println!("{}", gtr_bench::figures::fig15_from(&m));
        let bound = m
            .baseline
            .iter()
            .chain(m.variants.iter().flat_map(|(_, v)| v.iter()))
            .filter_map(|s| s.sampling.as_ref())
            .map(|s| s.error_bound_pct)
            .fold(0.0f64, f64::max);
        println!(
            "(sampled main matrix: {} cells in {:.2}s, worst per-cell error bound {:.1}%)",
            m.baseline.len() * (1 + m.variants.len()),
            wall.as_secs_f64(),
            bound
        );
        m
    } else {
        println!("{}", gtr_bench::figures::all(scale));
        if csv_dir.is_none() && stats_out.is_none() {
            return;
        }
        // One matrix re-run feeds both export formats.
        gtr_bench::figures::main_matrix_opts(scale, percentiles)
    };
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        std::fs::write(format!("{dir}/fig13b_improvement.csv"), m.improvement_csv())
            .expect("write csv");
        std::fs::write(
            format!("{dir}/fig14b_walks.csv"),
            m.normalized_csv(|s| s.page_walks as f64),
        )
        .expect("write csv");
        std::fs::write(
            format!("{dir}/fig13c_energy.csv"),
            m.normalized_csv(|s| s.dram_energy_nj),
        )
        .expect("write csv");
        eprintln!("CSV written to {dir}/");
    }
    if let Some(path) = stats_out {
        let j = m.to_json();
        let mut doc = if pretty {
            j.to_string()
        } else {
            let mut s = String::new();
            j.write_compact(&mut s);
            s
        };
        doc.push('\n');
        std::fs::write(&path, doc).expect("write stats JSON");
        eprintln!("matrix stats written to {path}");
    }
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
