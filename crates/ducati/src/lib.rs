//! # gtr-ducati
//!
//! A faithful-in-spirit model of **DUCATI** (Jaleel, Ebrahimi, Duncan —
//! TACO 2019), the comparison point of the paper's §6.3.4: extending
//! TLB reach by storing end-to-end translations in the last-level
//! cache and in a carved-out *part-of-memory* TLB region of device
//! DRAM.
//!
//! The defining property the paper leans on is that DUCATI's
//! translations **contend** with regular data for LLC capacity and
//! DRAM bandwidth — unlike the reconfigurable LDS/I-cache scheme,
//! which only uses capacity nothing else wants. That contention falls
//! out naturally here: every DUCATI lookup and fill is a real memory
//! access through `gtr-mem`'s shared L2 data cache and DRAM.
//!
//! # Example
//!
//! ```
//! use gtr_ducati::Ducati;
//! use gtr_core::system::TranslationSideCache;
//! use gtr_mem::system::{MemorySystem, MemorySystemConfig};
//! use gtr_vm::addr::{Ppn, Translation, TranslationKey, Vpn};
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::default());
//! let mut ducati = Ducati::new(1 << 20);
//! let tx = Translation::new(TranslationKey::for_vpn(Vpn(42)), Ppn(7));
//! ducati.fill(0, tx, &mut mem);
//! let (done, ppn) = ducati.lookup(100, tx.key, &mut mem).unwrap();
//! assert_eq!(ppn, Ppn(7));
//! assert!(done > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use gtr_core::system::TranslationSideCache;
use gtr_mem::system::MemorySystem;
use gtr_sim::stats::HitMiss;
use gtr_sim::Cycle;
use gtr_vm::addr::{Ppn, Translation, TranslationKey};

/// Physical base of the carved-out part-of-memory TLB region.
const POM_BASE: u64 = 1 << 43;

/// Fixed POM-TLB controller latency per lookup (indexing, tag compare
/// and the long LLC-slice round trip Ryoo et al. report for
/// part-of-memory TLBs).
const POM_OVERHEAD: Cycle = 120;

/// The DUCATI side cache: a direct-mapped, memory-resident big TLB
/// whose entries are accessed through the shared LLC + DRAM.
#[derive(Debug)]
pub struct Ducati {
    entries: u64,
    table: HashMap<u64, Translation>,
    stats: HitMiss,
    fills: u64,
}

impl Ducati {
    /// Creates a part-of-memory TLB with `entries` 8-byte slots
    /// (carved out of device memory).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: u64) -> Self {
        assert!(entries > 0, "POM-TLB needs at least one entry");
        Self { entries, table: HashMap::new(), stats: HitMiss::new(), fills: 0 }
    }

    fn slot(&self, key: TranslationKey) -> u64 {
        key.vpn.0 % self.entries
    }

    fn slot_addr(&self, slot: u64) -> u64 {
        POM_BASE + slot * 8
    }

    /// Lookup hits/misses.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Fills performed.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Entries currently valid in the POM table.
    pub fn resident(&self) -> usize {
        self.table.len()
    }
}

impl TranslationSideCache for Ducati {
    fn lookup(
        &mut self,
        now: Cycle,
        key: TranslationKey,
        mem: &mut MemorySystem,
    ) -> Option<(Cycle, Ppn)> {
        let slot = self.slot(key);
        // The entry must be read regardless of outcome — that is
        // DUCATI's cost model: a POM-controller round trip plus a real
        // LLC/DRAM access that contends with data traffic ("higher
        // number of off-chip accesses to the translations", §6.3.4).
        let done = mem.read(now + POM_OVERHEAD, self.slot_addr(slot));
        match self.table.get(&slot) {
            Some(tx) if tx.key == key => {
                self.stats.hit();
                Some((done, tx.ppn))
            }
            _ => {
                self.stats.miss();
                None
            }
        }
    }

    fn fill(&mut self, now: Cycle, tx: Translation, mem: &mut MemorySystem) {
        let slot = self.slot(tx.key);
        // Write-through into the POM region: consumes LLC capacity and
        // DRAM bandwidth (the paper's contention argument).
        let _ = mem.write(now, self.slot_addr(slot));
        self.table.insert(slot, tx);
        self.fills += 1;
    }

    fn lookup_functional(&mut self, key: TranslationKey) -> Option<Ppn> {
        // Functional warming resolves from the same direct-mapped table
        // but models no POM-controller trip and no LLC/DRAM traffic —
        // the resident set stays faithful across fast-forward windows
        // while the contention cost stays where it belongs, in the
        // detailed intervals. Timed-path `stats()` are untouched.
        match self.table.get(&self.slot(key)) {
            Some(tx) if tx.key == key => Some(tx.ppn),
            _ => None,
        }
    }

    fn fill_functional(&mut self, tx: Translation) {
        self.table.insert(self.slot(tx.key), tx);
        self.fills += 1;
    }

    fn name(&self) -> &'static str {
        "DUCATI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_mem::system::MemorySystemConfig;
    use gtr_vm::addr::Vpn;

    fn tx(v: u64) -> Translation {
        Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v + 9))
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::default())
    }

    #[test]
    fn fill_then_hit() {
        let mut m = mem();
        let mut d = Ducati::new(1024);
        d.fill(0, tx(5), &mut m);
        let (done, ppn) = d.lookup(10, tx(5).key, &mut m).unwrap();
        assert_eq!(ppn, Ppn(14));
        assert!(done > 10);
        assert_eq!(d.stats().hits, 1);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut m = mem();
        let mut d = Ducati::new(16);
        d.fill(0, tx(1), &mut m);
        d.fill(0, tx(17), &mut m); // same slot (17 % 16 == 1)
        assert!(d.lookup(0, tx(1).key, &mut m).is_none());
        assert!(d.lookup(0, tx(17).key, &mut m).is_some());
        assert_eq!(d.resident(), 1);
    }

    #[test]
    fn miss_still_costs_memory_access() {
        let mut m = mem();
        let mut d = Ducati::new(1024);
        let before = m.l2().stats().total() + m.dram().reads();
        assert!(d.lookup(0, tx(3).key, &mut m).is_none());
        assert!(
            m.l2().stats().total() + m.dram().reads() > before,
            "lookup must touch the memory system"
        );
    }

    #[test]
    fn fills_occupy_the_llc() {
        let mut m = mem();
        let mut d = Ducati::new(1 << 20);
        for v in 0..10_000u64 {
            d.fill(0, tx(v * 8), &mut m);
        }
        assert!(m.l2().len() > 1_000, "POM traffic contends for LLC lines");
    }

    #[test]
    fn every_lookup_pays_the_pom_overhead() {
        let mut m = mem();
        let mut d = Ducati::new(1024);
        d.fill(0, tx(7), &mut m);
        let (t1, _) = d.lookup(0, tx(7).key, &mut m).unwrap();
        assert!(t1 >= POM_OVERHEAD, "controller round trip always charged");
        let (t2, _) = d.lookup(t1, tx(7).key, &mut m).unwrap();
        assert!(t2 - t1 >= POM_OVERHEAD);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = Ducati::new(0);
    }

    #[test]
    fn functional_lookup_sees_timed_fills_and_vice_versa() {
        let mut m = mem();
        let mut d = Ducati::new(1024);
        // Timed fill → functional hit on the same resident set.
        d.fill(0, tx(5), &mut m);
        assert_eq!(d.lookup_functional(tx(5).key), Some(Ppn(14)));
        assert_eq!(d.lookup_functional(tx(6).key), None);
        // Functional fill → timed hit (one shared table).
        d.fill_functional(tx(33));
        let (_, ppn) = d.lookup(0, tx(33).key, &mut m).unwrap();
        assert_eq!(ppn, Ppn(42));
        assert_eq!(d.fills(), 2);
    }

    #[test]
    fn functional_path_never_touches_memory_or_timed_stats() {
        let mut m = mem();
        let mut d = Ducati::new(1024);
        d.fill(0, tx(9), &mut m);
        let accesses = m.l2().stats().total() + m.dram().reads();
        let stats = d.stats();
        assert!(d.lookup_functional(tx(9).key).is_some());
        assert!(d.lookup_functional(tx(10).key).is_none());
        d.fill_functional(tx(77));
        assert_eq!(
            m.l2().stats().total() + m.dram().reads(),
            accesses,
            "functional twins must be traffic-free"
        );
        assert_eq!(d.stats(), stats, "timed hit/miss stats must not move");
    }

    #[test]
    fn functional_respects_direct_mapped_conflicts() {
        let mut d = Ducati::new(16);
        d.fill_functional(tx(1));
        d.fill_functional(tx(17)); // same slot (17 % 16 == 1)
        assert_eq!(d.lookup_functional(tx(1).key), None);
        assert_eq!(d.lookup_functional(tx(17).key), Some(Ppn(26)));
        assert_eq!(d.resident(), 1);
    }
}
