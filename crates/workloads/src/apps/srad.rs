//! SRAD (Rodinia): speckle-reducing anisotropic diffusion — a dense,
//! regular stencil over an image.
//!
//! Table 2: a single kernel, ~0 page walks in the baseline (L2 TLB hit
//! ratio 99.9%), heavy LDS use. The image footprint (256 pages) sits
//! comfortably inside the baseline L2 TLB, so SRAD is the paper's
//! "must not regress" control.

use gtr_gpu::kernel::{AppTrace, KernelDesc};

use crate::gen::{into_workgroups, WaveBuilder};
use crate::scale::Scale;

/// Image side (512² × 4 B = 1 MB = 256 pages).
pub const DIM: u64 = 512;

/// VA base of the image.
pub const IMAGE_BASE: u64 = 0x1_0000_0000;

/// LDS bytes per workgroup (stencil tile halo).
pub const LDS_BYTES: u32 = 4608;

/// Builds the SRAD trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = DIM * 4;
    let waves = 32usize;
    let mut programs = Vec::with_capacity(waves);
    let rows_per_wave = DIM / waves as u64;
    for w in 0..waves as u64 {
        let mut b = WaveBuilder::new(10);
        let rows = scale.count(96) as u64;
        for i in 0..rows {
            // Each wave owns a private row band (little cross-CU
            // sharing, as Fig 14a reports for SRAD).
            let row = w * rows_per_wave + (i % rows_per_wave);
            let base = IMAGE_BASE + row * row_bytes;
            b.lds_write(((w % 4) as u32) * 1024);
            b.stream_read(base);
            // North/south neighbors: adjacent rows, same pages mostly.
            b.stream_read(base.saturating_sub(row_bytes).max(IMAGE_BASE));
            b.stream_read(base + row_bytes);
            b.lds_read((((w + i) % 4) as u32) * 1024);
            b.stream_write(base);
        }
        programs.push(b.build());
    }
    let k = KernelDesc::new("srad_main", 240, LDS_BYTES, into_workgroups(programs, 2));
    AppTrace::new("SRAD", vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel_with_lds() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 1);
        assert_eq!(app.kernels()[0].lds_bytes_per_wg(), LDS_BYTES);
    }

    #[test]
    fn footprint_fits_baseline_l2_tlb() {
        let pages = DIM * DIM * 4 / 4096;
        assert!(pages <= 512, "SRAD must fit the 512-entry L2 TLB: {pages}");
    }

    #[test]
    fn large_instruction_footprint() {
        // Fig 5a: SRAD's single kernel nearly fills the 256-line
        // I-cache (but fits, so the fetch path doesn't thrash).
        let lines = build(Scale::tiny()).kernels()[0].code_lines();
        assert!((200..=256).contains(&lines));
    }
}
