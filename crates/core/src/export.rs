//! Machine-readable export of [`RunStats`]: JSON (full fidelity,
//! parse-back supported) and CSV (flat tables for plotting).
//!
//! EXPERIMENTS.md numbers used to be hand-copied strings; this module
//! makes every figure a reproducible artifact — the bench binaries
//! write run stats through [`run_stats_to_json`] (`--stats-out`), and
//! `validate_stats` re-parses them with [`run_stats_from_json`] to
//! gate the schema in CI. The JSON encoding is hand-rolled on
//! [`gtr_sim::json`] because the workspace builds offline (no serde).
//!
//! Numbers are exact through a round-trip: counters are below 2^53 and
//! floats print in shortest-round-trip form, so
//! `run_stats_from_json(parse(run_stats_to_json(s))) == s` holds
//! bit-for-bit (the round-trip tests assert it).

use gtr_sim::hist::{AttrSlot, CycleAttribution, Hist};
use gtr_sim::json::Json;
use gtr_sim::stats::{FiveNumberSummary, HitMiss};

use crate::stats::{CoalescingStats, EpochStats, KernelStats, RunStats, SamplingMeta, TenantStats};

/// Schema identifier stamped into every exported stats document, bumped
/// when fields change incompatibly.
///
/// * **v1** — scalar counters, kernels, five-number summaries, epochs.
/// * **v2** — adds per-path cycle [`CycleAttribution`], the
///   distribution histograms (`latency_hists`, `iommu_latency`,
///   `victim_lifetime_*`, `victim_reuse_*`, `dist_enabled`), and the
///   per-epoch `lds_resident_tx` / `ic_resident_tx` occupancy gauges.
///   v1 documents still parse: the added fields default to empty.
/// * **v3** — adds the nullable `sampling` object ([`SamplingMeta`]:
///   interval-sampling window accounting, extrapolated vs measured
///   cycles, error bound, checkpoint provenance). `null` for exact
///   runs. v1/v2 documents still parse with `sampling` absent.
/// * **v4** — adds `side_cache_error_bound_pct` to the `sampling`
///   object (DUCATI hit-rate divergence between detailed and
///   functional windows) and the optional top-level `figures` array
///   on matrix documents (per-figure name / cell counts / worst
///   error bound, written by `all --stats-out`). v3 documents still
///   parse: the bound defaults to 0 and `figures` to absent.
/// * **v5** — adds the `tenants` array (per-tenant [`TenantStats`]
///   under multi-tenancy; TENANCY.md §4). **Stamped only on tenanted
///   documents**: an untenanted run carries no `tenants` field and
///   stamps v4, so every pre-tenancy export byte stays identical —
///   the tenancy-off frozen anchors diff clean. v4 documents still
///   parse with `tenants` empty.
/// * **v6** — adds the `coalescing` object ([`CoalescingStats`]:
///   coalesced-entry inserts, pages of reach, covering hits,
///   split-on-shootdown counts) for runs with
///   `ReachConfig::tlb_coalescing` enabled. Same conditional-stamp
///   discipline as v5: a non-coalescing run carries no `coalescing`
///   field and stamps v5 (tenanted) or v4, so every pre-coalescing
///   export byte stays identical. v5/v4 documents still parse with
///   `coalescing` absent.
pub const STATS_SCHEMA_VERSION: u64 = 6;

/// The version stamped on tenanted documents that carry no v6 field
/// (see the v6 note above).
pub const STATS_SCHEMA_VERSION_TENANTED: u64 = 5;

/// The version stamped on documents that carry neither the v5 nor the
/// v6 field (untenanted, non-coalescing exports stay byte-identical).
pub const STATS_SCHEMA_VERSION_UNTENANTED: u64 = 4;

/// The schema version a [`RunStats`] document stamps: v6 only when it
/// carries the `coalescing` object, v5 only when it carries the
/// `tenants` array, v4 otherwise.
pub fn run_stats_schema_version(s: &RunStats) -> u64 {
    if s.coalescing.is_some() {
        STATS_SCHEMA_VERSION
    } else if s.tenants.is_empty() {
        STATS_SCHEMA_VERSION_UNTENANTED
    } else {
        STATS_SCHEMA_VERSION_TENANTED
    }
}

fn hit_miss_to_json(hm: &HitMiss) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::from(hm.hits)),
        ("misses".into(), Json::from(hm.misses)),
    ])
}

fn hit_miss_from_json(j: &Json) -> Option<HitMiss> {
    Some(HitMiss {
        hits: j.get("hits")?.as_u64()?,
        misses: j.get("misses")?.as_u64()?,
    })
}

fn summary_to_json(s: &FiveNumberSummary) -> Json {
    Json::Obj(vec![
        ("min".into(), Json::from(s.min)),
        ("q1".into(), Json::from(s.q1)),
        ("median".into(), Json::from(s.median)),
        ("q3".into(), Json::from(s.q3)),
        ("max".into(), Json::from(s.max)),
    ])
}

fn summary_from_json(j: &Json) -> Option<FiveNumberSummary> {
    Some(FiveNumberSummary {
        min: j.get("min")?.as_f64()?,
        q1: j.get("q1")?.as_f64()?,
        median: j.get("median")?.as_f64()?,
        q3: j.get("q3")?.as_f64()?,
        max: j.get("max")?.as_f64()?,
    })
}

fn kernel_to_json(k: &KernelStats) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::from(k.name.as_str())),
        ("cycles".into(), Json::from(k.cycles)),
        ("instructions".into(), Json::from(k.instructions)),
        ("page_walks".into(), Json::from(k.page_walks)),
        ("icache_utilization_pct".into(), Json::from(k.icache_utilization_pct)),
        ("lds_bytes_per_wg".into(), Json::from(k.lds_bytes_per_wg as u64)),
    ])
}

fn kernel_from_json(j: &Json) -> Option<KernelStats> {
    Some(KernelStats {
        name: j.get("name")?.as_str()?.to_string(),
        cycles: j.get("cycles")?.as_u64()?,
        instructions: j.get("instructions")?.as_u64()?,
        page_walks: j.get("page_walks")?.as_u64()?,
        icache_utilization_pct: j.get("icache_utilization_pct")?.as_f64()?,
        lds_bytes_per_wg: j.get("lds_bytes_per_wg")?.as_u64()? as u32,
    })
}

/// Serializes a [`Hist`] sparsely: scalar `count`/`sum`/`max` plus a
/// `[index, count]` pair per non-empty bucket (most of the 64 buckets
/// are empty in practice, so dense arrays would bloat every export).
fn hist_to_json(h: &Hist) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::from(h.count())),
        ("sum".into(), Json::from(h.sum())),
        ("max".into(), Json::from(h.max())),
        (
            "buckets".into(),
            Json::Arr(
                h.nonzero_buckets()
                    .map(|(i, c)| Json::Arr(vec![Json::from(i as u64), Json::from(c)]))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a histogram written by [`hist_to_json`]. Beyond shape
/// errors, rejects documents whose `count` disagrees with the bucket
/// totals (see [`Hist::from_parts`]).
fn hist_from_json(j: &Json) -> Option<Hist> {
    let count = j.get("count")?.as_u64()?;
    let sum = j.get("sum")?.as_u64()?;
    let max = j.get("max")?.as_u64()?;
    let buckets = j
        .get("buckets")?
        .as_arr()?
        .iter()
        .map(|b| {
            let pair = b.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            Some((pair[0].as_u64()? as usize, pair[1].as_u64()?))
        })
        .collect::<Option<Vec<_>>>()?;
    Hist::from_parts(count, sum, max, buckets)
}

fn hist_array_from_json<const N: usize>(j: &Json) -> Option<[Hist; N]> {
    let arr = j.as_arr()?;
    if arr.len() != N {
        return None;
    }
    let hists = arr.iter().map(hist_from_json).collect::<Option<Vec<_>>>()?;
    hists.try_into().ok()
}

fn attribution_to_json(a: &CycleAttribution) -> Json {
    Json::Obj(
        a.slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    CycleAttribution::label(i).to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::from(s.count)),
                        ("cycles".into(), Json::from(s.cycles)),
                    ]),
                )
            })
            .collect(),
    )
}

fn attribution_from_json(j: &Json) -> Option<CycleAttribution> {
    let mut a = CycleAttribution::new();
    for (i, slot) in a.slots.iter_mut().enumerate() {
        let entry = j.get(CycleAttribution::label(i))?;
        *slot = AttrSlot {
            count: entry.get("count")?.as_u64()?,
            cycles: entry.get("cycles")?.as_u64()?,
        };
    }
    Some(a)
}

fn tenant_to_json(t: &TenantStats) -> Json {
    Json::Obj(vec![
        ("vmid".into(), Json::from(t.vmid as u64)),
        ("app".into(), Json::from(t.app.as_str())),
        ("cycles".into(), Json::from(t.cycles)),
        ("instructions".into(), Json::from(t.instructions)),
        ("translation_requests".into(), Json::from(t.translation_requests)),
        ("l1_tlb".into(), hit_miss_to_json(&t.l1_tlb)),
        ("lds_tx".into(), hit_miss_to_json(&t.lds_tx)),
        ("ic_tx".into(), hit_miss_to_json(&t.ic_tx)),
        ("l2_tlb".into(), hit_miss_to_json(&t.l2_tlb)),
        ("page_walks".into(), Json::from(t.page_walks)),
        ("shootdowns".into(), Json::from(t.shootdowns)),
        ("solo_cycles".into(), Json::from(t.solo_cycles)),
        // Derived, like `ptw_pki`: validated for presence on parse but
        // recomputed from the counters, so it cannot drift.
        ("slowdown".into(), Json::from(t.slowdown())),
    ])
}

fn tenant_from_json(j: &Json) -> Option<TenantStats> {
    j.get("slowdown")?.as_f64()?;
    Some(TenantStats {
        vmid: j.get("vmid")?.as_u64()? as u8,
        app: j.get("app")?.as_str()?.to_string(),
        cycles: j.get("cycles")?.as_u64()?,
        instructions: j.get("instructions")?.as_u64()?,
        translation_requests: j.get("translation_requests")?.as_u64()?,
        l1_tlb: hit_miss_from_json(j.get("l1_tlb")?)?,
        lds_tx: hit_miss_from_json(j.get("lds_tx")?)?,
        ic_tx: hit_miss_from_json(j.get("ic_tx")?)?,
        l2_tlb: hit_miss_from_json(j.get("l2_tlb")?)?,
        page_walks: j.get("page_walks")?.as_u64()?,
        shootdowns: j.get("shootdowns")?.as_u64()?,
        solo_cycles: j.get("solo_cycles")?.as_u64()?,
    })
}

fn coalescing_to_json(c: &CoalescingStats) -> Json {
    Json::Obj(vec![
        ("inserts".into(), Json::from(c.inserts)),
        ("entries_coalesced".into(), Json::from(c.entries_coalesced)),
        ("span_pages".into(), Json::from(c.span_pages)),
        ("coalesced_hits".into(), Json::from(c.coalesced_hits)),
        ("shootdown_splits".into(), Json::from(c.shootdown_splits)),
        // Derived, like `ptw_pki`: validated for presence on parse but
        // recomputed from the counters, so it cannot drift.
        ("reach_multiplier".into(), Json::from(c.reach_multiplier())),
    ])
}

fn coalescing_from_json(j: &Json) -> Option<CoalescingStats> {
    j.get("reach_multiplier")?.as_f64()?;
    Some(CoalescingStats {
        inserts: j.get("inserts")?.as_u64()?,
        entries_coalesced: j.get("entries_coalesced")?.as_u64()?,
        span_pages: j.get("span_pages")?.as_u64()?,
        coalesced_hits: j.get("coalesced_hits")?.as_u64()?,
        shootdown_splits: j.get("shootdown_splits")?.as_u64()?,
    })
}

fn sampling_to_json(m: &SamplingMeta) -> Json {
    Json::Obj(vec![
        ("warmup_window".into(), Json::from(m.warmup_window)),
        ("detail_window".into(), Json::from(m.detail_window)),
        ("fastforward_window".into(), Json::from(m.fastforward_window)),
        ("detail_intervals".into(), Json::from(m.detail_intervals)),
        ("warmup_insts".into(), Json::from(m.warmup_insts)),
        ("detail_insts".into(), Json::from(m.detail_insts)),
        ("fastforward_insts".into(), Json::from(m.fastforward_insts)),
        ("warmup_cycles".into(), Json::from(m.warmup_cycles)),
        ("detail_cycles".into(), Json::from(m.detail_cycles)),
        ("fastforward_cycles".into(), Json::from(m.fastforward_cycles)),
        ("extrapolated_cycles".into(), Json::from(m.extrapolated_cycles)),
        ("measured_cycles".into(), Json::from(m.measured_cycles)),
        ("error_bound_pct".into(), Json::from(m.error_bound_pct)),
        (
            "side_cache_error_bound_pct".into(),
            Json::from(m.side_cache_error_bound_pct),
        ),
        ("checkpoint_restored".into(), Json::from(m.checkpoint_restored)),
    ])
}

fn sampling_from_json(j: &Json) -> Option<SamplingMeta> {
    Some(SamplingMeta {
        warmup_window: j.get("warmup_window")?.as_u64()?,
        detail_window: j.get("detail_window")?.as_u64()?,
        fastforward_window: j.get("fastforward_window")?.as_u64()?,
        detail_intervals: j.get("detail_intervals")?.as_u64()?,
        warmup_insts: j.get("warmup_insts")?.as_u64()?,
        detail_insts: j.get("detail_insts")?.as_u64()?,
        fastforward_insts: j.get("fastforward_insts")?.as_u64()?,
        warmup_cycles: j.get("warmup_cycles")?.as_u64()?,
        detail_cycles: j.get("detail_cycles")?.as_u64()?,
        fastforward_cycles: j.get("fastforward_cycles")?.as_u64()?,
        extrapolated_cycles: j.get("extrapolated_cycles")?.as_u64()?,
        measured_cycles: j.get("measured_cycles")?.as_u64()?,
        error_bound_pct: j.get("error_bound_pct")?.as_f64()?,
        // Schema v4; absent in v3 documents, which still parse.
        side_cache_error_bound_pct: j
            .get("side_cache_error_bound_pct")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        checkpoint_restored: j.get("checkpoint_restored")?.as_bool()?,
    })
}

/// One epoch-series column: its name and the getter extracting it
/// from a snapshot.
type EpochColumn = (&'static str, fn(&EpochStats) -> u64);

/// The `(name, getter)` pairs defining the epoch-series columns, used
/// by both the JSON and CSV encodings so the two stay in lockstep.
/// The last two gauges are the schema-v2 Tx-occupancy split; v1
/// documents lack them (the parsers default them to 0).
const EPOCH_COLUMNS: [EpochColumn; 16] = [
    ("cycle", |e| e.cycle),
    ("translation_requests", |e| e.translation_requests),
    ("l1_hits", |e| e.l1_hits),
    ("l1_misses", |e| e.l1_misses),
    ("l2_hits", |e| e.l2_hits),
    ("l2_misses", |e| e.l2_misses),
    ("lds_tx_hits", |e| e.lds_tx_hits),
    ("lds_tx_misses", |e| e.lds_tx_misses),
    ("ic_tx_hits", |e| e.ic_tx_hits),
    ("ic_tx_misses", |e| e.ic_tx_misses),
    ("page_walks", |e| e.page_walks),
    ("instructions", |e| e.instructions),
    ("dram_accesses", |e| e.dram_accesses),
    ("resident_tx", |e| e.resident_tx),
    ("lds_resident_tx", |e| e.lds_resident_tx),
    ("ic_resident_tx", |e| e.ic_resident_tx),
];

/// How many epoch columns a schema-v1 document has (everything before
/// the v2 occupancy gauges).
const EPOCH_COLUMNS_V1: usize = 14;

fn epoch_to_json(e: &EpochStats) -> Json {
    Json::Obj(
        EPOCH_COLUMNS
            .iter()
            .map(|(name, get)| ((*name).to_string(), Json::from(get(e))))
            .collect(),
    )
}

fn epoch_from_json(j: &Json) -> Option<EpochStats> {
    let mut e = EpochStats::default();
    let mut fields: [(&str, &mut u64); 14] = [
        ("cycle", &mut e.cycle),
        ("translation_requests", &mut e.translation_requests),
        ("l1_hits", &mut e.l1_hits),
        ("l1_misses", &mut e.l1_misses),
        ("l2_hits", &mut e.l2_hits),
        ("l2_misses", &mut e.l2_misses),
        ("lds_tx_hits", &mut e.lds_tx_hits),
        ("lds_tx_misses", &mut e.lds_tx_misses),
        ("ic_tx_hits", &mut e.ic_tx_hits),
        ("ic_tx_misses", &mut e.ic_tx_misses),
        ("page_walks", &mut e.page_walks),
        ("instructions", &mut e.instructions),
        ("dram_accesses", &mut e.dram_accesses),
        ("resident_tx", &mut e.resident_tx),
    ];
    for (name, slot) in fields.iter_mut() {
        **slot = j.get(name)?.as_u64()?;
    }
    // The v2 occupancy gauges are absent in v1 documents: default to 0.
    e.lds_resident_tx = j.get("lds_resident_tx").and_then(Json::as_u64).unwrap_or(0);
    e.ic_resident_tx = j.get("ic_resident_tx").and_then(Json::as_u64).unwrap_or(0);
    Some(e)
}

/// Serializes one run's full statistics (including the epoch series)
/// as a JSON object. Field order matches the struct declaration so
/// exported files diff cleanly.
pub fn run_stats_to_json(s: &RunStats) -> Json {
    let mut fields = vec![
        ("schema_version".into(), Json::from(run_stats_schema_version(s))),
        ("app".into(), Json::from(s.app.as_str())),
        ("total_cycles".into(), Json::from(s.total_cycles)),
        ("instructions".into(), Json::from(s.instructions)),
        ("thread_instructions".into(), Json::from(s.thread_instructions)),
        ("translation_requests".into(), Json::from(s.translation_requests)),
        ("l1_tlb".into(), hit_miss_to_json(&s.l1_tlb)),
        ("l2_tlb".into(), hit_miss_to_json(&s.l2_tlb)),
        ("lds_tx".into(), hit_miss_to_json(&s.lds_tx)),
        ("ic_tx".into(), hit_miss_to_json(&s.ic_tx)),
        ("inst_fetch".into(), hit_miss_to_json(&s.inst_fetch)),
        ("page_walks".into(), Json::from(s.page_walks)),
        ("pte_accesses".into(), Json::from(s.pte_accesses)),
        ("dev_l1_tlb".into(), hit_miss_to_json(&s.dev_l1_tlb)),
        ("dev_l2_tlb".into(), hit_miss_to_json(&s.dev_l2_tlb)),
        ("pwc_pmd".into(), hit_miss_to_json(&s.pwc_pmd)),
        ("dram_accesses".into(), Json::from(s.dram_accesses)),
        ("dram_energy_nj".into(), Json::from(s.dram_energy_nj)),
        ("peak_tx_entries".into(), Json::from(s.peak_tx_entries)),
        ("tx_shared_fraction".into(), Json::from(s.tx_shared_fraction)),
        ("ptw_pki".into(), Json::from(s.ptw_pki())),
        ("kernels".into(), Json::Arr(s.kernels.iter().map(kernel_to_json).collect())),
        ("lds_request_summary".into(), summary_to_json(&s.lds_request_summary)),
        ("lds_idle_summary".into(), summary_to_json(&s.lds_idle_summary)),
        ("icache_idle_summary".into(), summary_to_json(&s.icache_idle_summary)),
        (
            "icache_utilization_summary".into(),
            summary_to_json(&s.icache_utilization_summary),
        ),
        ("epoch_len".into(), Json::from(s.epoch_len)),
        ("epochs".into(), Json::Arr(s.epochs.iter().map(epoch_to_json).collect())),
        ("attribution".into(), attribution_to_json(&s.attribution)),
        ("dist_enabled".into(), Json::from(s.dist_enabled)),
        (
            "latency_hists".into(),
            Json::Arr(s.latency_hists.iter().map(hist_to_json).collect()),
        ),
        (
            "iommu_latency".into(),
            Json::Arr(s.iommu_latency.iter().map(hist_to_json).collect()),
        ),
        ("victim_lifetime_lds".into(), hist_to_json(&s.victim_lifetime_lds)),
        ("victim_lifetime_ic".into(), hist_to_json(&s.victim_lifetime_ic)),
        ("victim_reuse_lds".into(), hist_to_json(&s.victim_reuse_lds)),
        ("victim_reuse_ic".into(), hist_to_json(&s.victim_reuse_ic)),
        (
            "sampling".into(),
            match &s.sampling {
                Some(m) => sampling_to_json(m),
                None => Json::Null,
            },
        ),
    ];
    // v5: the `tenants` array only exists on tenanted documents (the
    // conditional keeps untenanted exports byte-identical to v4).
    if !s.tenants.is_empty() {
        fields.push((
            "tenants".into(),
            Json::Arr(s.tenants.iter().map(tenant_to_json).collect()),
        ));
    }
    // v6: the `coalescing` object only exists when coalesced entries
    // were enabled (same byte-stability discipline as `tenants`).
    if let Some(co) = &s.coalescing {
        fields.push(("coalescing".into(), coalescing_to_json(co)));
    }
    Json::Obj(fields)
}

/// [`run_stats_to_json`] rendered compactly (no whitespace) with a
/// trailing newline — the default bytes `--stats-out` writes. Matrix
/// documents at paper scale carry thousands of epochs; compact form is
/// several times smaller and machine consumers don't care.
pub fn run_stats_to_json_string(s: &RunStats) -> String {
    let mut out = String::new();
    run_stats_to_json(s).write_compact(&mut out);
    out.push('\n');
    out
}

/// [`run_stats_to_json`] rendered human-readably (2-space indent) with
/// a trailing newline — the `--pretty` opt-in of the bench binaries.
pub fn run_stats_to_json_string_pretty(s: &RunStats) -> String {
    let mut out = run_stats_to_json(s).to_string();
    out.push('\n');
    out
}

/// Parses a JSON tree written by [`run_stats_to_json`]. Returns `None`
/// when any field is missing or has the wrong type. Derived fields
/// (`ptw_pki`, `schema_version`) are validated for presence but
/// recomputed from source counters, so they cannot drift.
///
/// Both schema versions parse: a v1 document leaves the v2
/// distribution fields at their (empty) defaults; a v2 document must
/// carry all of them.
pub fn run_stats_from_json(j: &Json) -> Option<RunStats> {
    let version = j.get("schema_version")?.as_u64()?;
    j.get("ptw_pki")?.as_f64()?;
    Some(RunStats {
        app: j.get("app")?.as_str()?.to_string(),
        total_cycles: j.get("total_cycles")?.as_u64()?,
        instructions: j.get("instructions")?.as_u64()?,
        thread_instructions: j.get("thread_instructions")?.as_u64()?,
        translation_requests: j.get("translation_requests")?.as_u64()?,
        l1_tlb: hit_miss_from_json(j.get("l1_tlb")?)?,
        l2_tlb: hit_miss_from_json(j.get("l2_tlb")?)?,
        lds_tx: hit_miss_from_json(j.get("lds_tx")?)?,
        ic_tx: hit_miss_from_json(j.get("ic_tx")?)?,
        inst_fetch: hit_miss_from_json(j.get("inst_fetch")?)?,
        page_walks: j.get("page_walks")?.as_u64()?,
        pte_accesses: j.get("pte_accesses")?.as_u64()?,
        dev_l1_tlb: hit_miss_from_json(j.get("dev_l1_tlb")?)?,
        dev_l2_tlb: hit_miss_from_json(j.get("dev_l2_tlb")?)?,
        pwc_pmd: hit_miss_from_json(j.get("pwc_pmd")?)?,
        dram_accesses: j.get("dram_accesses")?.as_u64()?,
        dram_energy_nj: j.get("dram_energy_nj")?.as_f64()?,
        peak_tx_entries: j.get("peak_tx_entries")?.as_u64()? as usize,
        tx_shared_fraction: j.get("tx_shared_fraction")?.as_f64()?,
        kernels: j
            .get("kernels")?
            .as_arr()?
            .iter()
            .map(kernel_from_json)
            .collect::<Option<Vec<_>>>()?,
        lds_request_summary: summary_from_json(j.get("lds_request_summary")?)?,
        lds_idle_summary: summary_from_json(j.get("lds_idle_summary")?)?,
        icache_idle_summary: summary_from_json(j.get("icache_idle_summary")?)?,
        icache_utilization_summary: summary_from_json(j.get("icache_utilization_summary")?)?,
        epoch_len: j.get("epoch_len")?.as_u64()?,
        epochs: j
            .get("epochs")?
            .as_arr()?
            .iter()
            .map(epoch_from_json)
            .collect::<Option<Vec<_>>>()?,
        attribution: if version >= 2 {
            attribution_from_json(j.get("attribution")?)?
        } else {
            CycleAttribution::default()
        },
        dist_enabled: if version >= 2 { j.get("dist_enabled")?.as_bool()? } else { false },
        latency_hists: if version >= 2 {
            hist_array_from_json(j.get("latency_hists")?)?
        } else {
            Default::default()
        },
        iommu_latency: if version >= 2 {
            hist_array_from_json(j.get("iommu_latency")?)?
        } else {
            Default::default()
        },
        victim_lifetime_lds: if version >= 2 {
            hist_from_json(j.get("victim_lifetime_lds")?)?
        } else {
            Hist::default()
        },
        victim_lifetime_ic: if version >= 2 {
            hist_from_json(j.get("victim_lifetime_ic")?)?
        } else {
            Hist::default()
        },
        victim_reuse_lds: if version >= 2 {
            hist_from_json(j.get("victim_reuse_lds")?)?
        } else {
            Hist::default()
        },
        victim_reuse_ic: if version >= 2 {
            hist_from_json(j.get("victim_reuse_ic")?)?
        } else {
            Hist::default()
        },
        sampling: if version >= 3 {
            match j.get("sampling")? {
                Json::Null => None,
                obj => Some(sampling_from_json(obj)?),
            }
        } else {
            None
        },
        tenants: match j.get("tenants") {
            Some(arr) => arr
                .as_arr()?
                .iter()
                .map(tenant_from_json)
                .collect::<Option<Vec<_>>>()?,
            // A v5 stamp means the document is tenanted (untenanted
            // runs stamp v4), so the array must be present. A v6 stamp
            // only promises the `coalescing` object — an untenanted
            // coalescing run legitimately omits `tenants`.
            None if version == 5 => return None,
            None => Vec::new(),
        },
        coalescing: match j.get("coalescing") {
            Some(obj) => Some(coalescing_from_json(obj)?),
            // A v6 stamp means coalescing was on, so the object must
            // be present; older documents parse with it absent.
            None if version >= 6 => return None,
            None => None,
        },
    })
}

/// The epoch series as CSV: a header row of the column names, then one
/// row per snapshot (cumulative counters; see [`EpochStats`]).
pub fn epochs_to_csv(epochs: &[EpochStats]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let header: Vec<&str> = EPOCH_COLUMNS.iter().map(|(n, _)| *n).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for e in epochs {
        for (i, (_, get)) in EPOCH_COLUMNS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", get(e));
        }
        out.push('\n');
    }
    out
}

/// Parses CSV written by [`epochs_to_csv`]. Returns `None` on a
/// missing/reordered header or malformed row. A legacy (schema-v1)
/// header without the two occupancy-gauge columns is accepted; the
/// gauges default to 0.
pub fn epochs_from_csv(text: &str) -> Option<Vec<EpochStats>> {
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split(',').collect();
    let expected: Vec<&str> = EPOCH_COLUMNS.iter().map(|(n, _)| *n).collect();
    let columns = if header == expected {
        EPOCH_COLUMNS.len()
    } else if header == expected[..EPOCH_COLUMNS_V1] {
        EPOCH_COLUMNS_V1
    } else {
        return None;
    };
    let mut out = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let values: Vec<u64> = line
            .split(',')
            .map(|v| v.parse::<u64>().ok())
            .collect::<Option<Vec<_>>>()?;
        if values.len() != columns {
            return None;
        }
        out.push(EpochStats {
            cycle: values[0],
            translation_requests: values[1],
            l1_hits: values[2],
            l1_misses: values[3],
            l2_hits: values[4],
            l2_misses: values[5],
            lds_tx_hits: values[6],
            lds_tx_misses: values[7],
            ic_tx_hits: values[8],
            ic_tx_misses: values[9],
            page_walks: values[10],
            instructions: values[11],
            dram_accesses: values[12],
            resident_tx: values[13],
            lds_resident_tx: values.get(14).copied().unwrap_or(0),
            ic_resident_tx: values.get(15).copied().unwrap_or(0),
        });
    }
    Some(out)
}

/// One flat CSV row per run: the headline counters every figure's
/// table is built from (no nested kernels/epochs — those have their
/// own encodings).
pub fn runs_to_csv(runs: &[&RunStats]) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "app,total_cycles,instructions,thread_instructions,translation_requests,\
         l1_hits,l1_misses,l2_hits,l2_misses,lds_tx_hits,ic_tx_hits,page_walks,\
         dram_accesses,dram_energy_nj,peak_tx_entries,ptw_pki\n",
    );
    for s in runs {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.app,
            s.total_cycles,
            s.instructions,
            s.thread_instructions,
            s.translation_requests,
            s.l1_tlb.hits,
            s.l1_tlb.misses,
            s.l2_tlb.hits,
            s.l2_tlb.misses,
            s.lds_tx.hits,
            s.ic_tx.hits,
            s.page_walks,
            s.dram_accesses,
            s.dram_energy_nj,
            s.peak_tx_entries,
            s.ptw_pki(),
        );
    }
    out
}

/// Validates the invariants an exported stats document must satisfy
/// beyond parsing: epoch counters monotone in time order, and the
/// final epoch snapshot equal to the run totals. Returns a list of
/// human-readable violations (empty = valid).
pub fn check_epoch_invariants(s: &RunStats) -> Vec<String> {
    let mut problems = Vec::new();
    for (i, pair) in s.epochs.windows(2).enumerate() {
        if !pair[1].monotone_from(&pair[0]) {
            problems.push(format!("epoch {} not monotone from epoch {}", i + 1, i));
        }
    }
    if let Some(last) = s.epochs.last() {
        // Epochs snapshot the raw event clock; a sampled run's
        // total_cycles is the extrapolated estimate, so the final
        // epoch must match `sampling.measured_cycles` instead.
        let clock_end = s.sampling.as_ref().map_or(s.total_cycles, |m| m.measured_cycles);
        let checks: [(&str, u64, u64); 9] = [
            ("cycle", last.cycle, clock_end),
            ("translation_requests", last.translation_requests, s.translation_requests),
            ("l1_hits", last.l1_hits, s.l1_tlb.hits),
            ("l1_misses", last.l1_misses, s.l1_tlb.misses),
            ("l2_hits", last.l2_hits, s.l2_tlb.hits),
            ("lds_tx_hits", last.lds_tx_hits, s.lds_tx.hits),
            ("ic_tx_hits", last.ic_tx_hits, s.ic_tx.hits),
            ("page_walks", last.page_walks, s.page_walks),
            ("dram_accesses", last.dram_accesses, s.dram_accesses),
        ];
        for (name, epoch_v, total_v) in checks {
            if epoch_v != total_v {
                problems.push(format!(
                    "final epoch {name}={epoch_v} != run total {total_v}"
                ));
            }
        }
    } else if s.epoch_len != 0 {
        problems.push("epoch_len set but no epochs recorded".into());
    }
    problems
}

/// Validates the schema-v3 sampling invariants: the per-window
/// instruction counts must partition the run's instructions, the
/// per-window cycle counts must partition the measured event clock,
/// and `total_cycles` must equal detail + extrapolated cycles (or the
/// measured clock in the degenerate no-detail-instructions case).
/// Always empty when `sampling` is absent (exact runs).
pub fn check_sampling_invariants(s: &RunStats) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(m) = &s.sampling else {
        return problems;
    };
    let insts = m.warmup_insts + m.detail_insts + m.fastforward_insts;
    if insts != s.instructions {
        problems.push(format!(
            "sampling windows account {insts} instructions != run total {}",
            s.instructions
        ));
    }
    let cycles = m.warmup_cycles + m.detail_cycles + m.fastforward_cycles;
    if cycles != m.measured_cycles {
        problems.push(format!(
            "sampling windows account {cycles} cycles != measured_cycles {}",
            m.measured_cycles
        ));
    }
    let expect_total = if m.detail_insts > 0 {
        m.detail_cycles + m.extrapolated_cycles
    } else {
        m.measured_cycles
    };
    if s.total_cycles != expect_total {
        problems.push(format!(
            "total_cycles {} != detail + extrapolated {expect_total}",
            s.total_cycles
        ));
    }
    if m.error_bound_pct < 0.0 || !m.error_bound_pct.is_finite() {
        problems.push(format!("error_bound_pct {} not finite/non-negative", m.error_bound_pct));
    }
    if m.side_cache_error_bound_pct < 0.0 || !m.side_cache_error_bound_pct.is_finite() {
        problems.push(format!(
            "side_cache_error_bound_pct {} not finite/non-negative",
            m.side_cache_error_bound_pct
        ));
    }
    problems
}

/// Validates the schema-v5 tenancy invariants: tenants are listed in
/// VM-ID order (tenant *i* owns address space *i*), and because
/// kernels run serially and the per-tenant counters are kernel-
/// boundary deltas, the per-tenant sums must telescope to the run's
/// global totals (TENANCY.md §4). Always empty for untenanted
/// documents (no `tenants` array).
pub fn check_tenancy_invariants(s: &RunStats) -> Vec<String> {
    let mut problems = Vec::new();
    if s.tenants.is_empty() {
        return problems;
    }
    for (i, t) in s.tenants.iter().enumerate() {
        if t.vmid as usize != i {
            problems.push(format!("tenant {} carries vmid {} (must be VM-ID order)", i, t.vmid));
        }
        if !t.slowdown().is_finite() || t.slowdown() < 0.0 {
            problems.push(format!("tenant {} slowdown {} not finite/non-negative", i, t.slowdown()));
        }
    }
    let sum = |f: fn(&TenantStats) -> u64| s.tenants.iter().map(f).sum::<u64>();
    let kernel_cycles: u64 = s.kernels.iter().map(|k| k.cycles).sum();
    let checks: [(&str, u64, u64); 11] = [
        ("cycles", sum(|t| t.cycles), kernel_cycles),
        ("instructions", sum(|t| t.instructions), s.instructions),
        ("translation_requests", sum(|t| t.translation_requests), s.translation_requests),
        ("l1_tlb hits", sum(|t| t.l1_tlb.hits), s.l1_tlb.hits),
        ("l1_tlb misses", sum(|t| t.l1_tlb.misses), s.l1_tlb.misses),
        ("lds_tx hits", sum(|t| t.lds_tx.hits), s.lds_tx.hits),
        ("lds_tx misses", sum(|t| t.lds_tx.misses), s.lds_tx.misses),
        ("ic_tx hits", sum(|t| t.ic_tx.hits), s.ic_tx.hits),
        ("ic_tx misses", sum(|t| t.ic_tx.misses), s.ic_tx.misses),
        ("l2_tlb hits", sum(|t| t.l2_tlb.hits), s.l2_tlb.hits),
        ("page_walks", sum(|t| t.page_walks), s.page_walks),
    ];
    for (name, got, want) in checks {
        if got != want {
            problems.push(format!("per-tenant {name} sum to {got} != run total {want}"));
        }
    }
    problems
}

/// Validates the schema-v6 coalescing invariants: a covering entry is
/// only born from an insert, every insert covers at least one page and
/// a coalesced insert at least two, and the derived reach multiplier
/// must be a finite value ≥ 1. Always empty when `coalescing` is
/// absent (non-coalescing documents carry no v6 field).
pub fn check_coalescing_invariants(s: &RunStats) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(c) = &s.coalescing else {
        return problems;
    };
    if c.entries_coalesced > c.inserts {
        problems.push(format!(
            "entries_coalesced {} > inserts {}",
            c.entries_coalesced, c.inserts
        ));
    }
    // Every insert covers ≥ 1 page; a coalesced one covers ≥ 2 pages.
    let min_pages = c.inserts + c.entries_coalesced;
    if c.span_pages < min_pages {
        problems.push(format!(
            "span_pages {} < inserts + entries_coalesced {min_pages}",
            c.span_pages
        ));
    }
    if c.entries_coalesced == 0 {
        // Nothing ever coalesced: no page of extra reach, no covering
        // hit, and nothing for a shootdown to split.
        if c.span_pages != c.inserts {
            problems.push(format!(
                "no entry coalesced but span_pages {} != inserts {}",
                c.span_pages, c.inserts
            ));
        }
        if c.coalesced_hits != 0 {
            problems.push(format!(
                "no entry coalesced but coalesced_hits = {}",
                c.coalesced_hits
            ));
        }
        if c.shootdown_splits != 0 {
            problems.push(format!(
                "no entry coalesced but shootdown_splits = {}",
                c.shootdown_splits
            ));
        }
    }
    if !c.reach_multiplier().is_finite() || c.reach_multiplier() < 1.0 {
        problems.push(format!(
            "reach_multiplier {} not finite/≥1",
            c.reach_multiplier()
        ));
    }
    problems
}

/// Validates the schema-v2 distribution invariants: the cycle
/// attribution must re-add to the scalar counters, and when
/// distribution recording was armed the histogram totals must agree
/// with the attribution slot by slot. Returns human-readable
/// violations (empty = valid); always empty for `schema_version < 2`
/// (v1 documents carry no distributions).
pub fn check_distribution_invariants(s: &RunStats, schema_version: u64) -> Vec<String> {
    let mut problems = Vec::new();
    if schema_version < 2 {
        return problems;
    }
    let a = &s.attribution;
    let counter_checks: [(&str, u64, u64); 4] = [
        ("attribution total", a.total_count(), s.translation_requests),
        ("l1_hit slot", a.slots[0].count, s.l1_tlb.hits),
        ("lds_tx slot", a.slots[2].count, s.lds_tx.hits),
        ("ic_tx slot", a.slots[3].count, s.ic_tx.hits),
    ];
    for (name, got, want) in counter_checks {
        if got != want {
            problems.push(format!("{name} count {got} != scalar counter {want}"));
        }
    }
    let miss_paths: u64 = a.slots[1..].iter().map(|sl| sl.count).sum();
    if miss_paths != s.l1_tlb.misses {
        problems.push(format!(
            "non-L1-hit slots sum to {miss_paths} != l1 misses {}",
            s.l1_tlb.misses
        ));
    }
    if s.dist_enabled {
        for (i, (h, slot)) in s.latency_hists.iter().zip(&a.slots).enumerate() {
            let label = CycleAttribution::label(i);
            if h.count() != slot.count {
                problems.push(format!(
                    "latency hist '{label}' count {} != attribution count {}",
                    h.count(),
                    slot.count
                ));
            }
            if h.sum() != slot.cycles {
                problems.push(format!(
                    "latency hist '{label}' sum {} != attribution cycles {}",
                    h.sum(),
                    slot.cycles
                ));
            }
        }
        let iommu_total: u64 = s.iommu_latency.iter().map(Hist::count).sum();
        if iommu_total != a.slots[5].count {
            problems.push(format!(
                "iommu latency hists sum to {iommu_total} != walk-path count {}",
                a.slots[5].count
            ));
        }
        let paired: [(&str, &Hist, &Hist); 2] = [
            ("lds", &s.victim_lifetime_lds, &s.victim_reuse_lds),
            ("ic", &s.victim_lifetime_ic, &s.victim_reuse_ic),
        ];
        for (name, lifetime, reuse) in paired {
            if lifetime.count() != reuse.count() {
                problems.push(format!(
                    "victim {name}: lifetime count {} != reuse count {} \
                     (every eviction contributes one of each)",
                    lifetime.count(),
                    reuse.count()
                ));
            }
        }
    } else {
        let all_hists: Vec<&Hist> = s
            .latency_hists
            .iter()
            .chain(&s.iommu_latency)
            .chain([
                &s.victim_lifetime_lds,
                &s.victim_lifetime_ic,
                &s.victim_reuse_lds,
                &s.victim_reuse_ic,
            ])
            .collect();
        if all_hists.iter().any(|h| !h.is_empty()) {
            problems.push("dist_enabled is false but histograms are non-empty".into());
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A histogram of `n` samples all equal to `v`.
    fn hist_of(n: u64, v: u64) -> Hist {
        let mut h = Hist::new();
        for _ in 0..n {
            h.record(v);
        }
        h
    }

    fn sample_stats() -> RunStats {
        RunStats {
            app: "GUPS".into(),
            total_cycles: 3_977_625,
            instructions: 10_000,
            thread_instructions: 640_000,
            translation_requests: 5_000,
            l1_tlb: HitMiss { hits: 3_000, misses: 2_000 },
            l2_tlb: HitMiss { hits: 700, misses: 1_300 },
            lds_tx: HitMiss { hits: 200, misses: 1_800 },
            ic_tx: HitMiss { hits: 100, misses: 1_700 },
            inst_fetch: HitMiss { hits: 9_000, misses: 1_000 },
            page_walks: 1_300,
            pte_accesses: 4_100,
            dev_l1_tlb: HitMiss { hits: 1, misses: 2 },
            dev_l2_tlb: HitMiss { hits: 3, misses: 4 },
            pwc_pmd: HitMiss { hits: 5, misses: 6 },
            dram_accesses: 7_777,
            dram_energy_nj: 123.456789,
            peak_tx_entries: 321,
            tx_shared_fraction: 0.25,
            kernels: vec![KernelStats {
                name: "k \"0\"".into(),
                cycles: 99,
                instructions: 12,
                page_walks: 3,
                icache_utilization_pct: 33.75,
                lds_bytes_per_wg: 4096,
            }],
            lds_request_summary: FiveNumberSummary {
                min: 0.0,
                q1: 1.0,
                median: 2.5,
                q3: 3.0,
                max: 4.0,
            },
            epoch_len: 1_000,
            epochs: vec![
                EpochStats { cycle: 1_000, translation_requests: 100, ..Default::default() },
                EpochStats {
                    cycle: 3_977_625,
                    translation_requests: 5_000,
                    l1_hits: 3_000,
                    l1_misses: 2_000,
                    l2_hits: 700,
                    l2_misses: 1_300,
                    lds_tx_hits: 200,
                    lds_tx_misses: 1_800,
                    ic_tx_hits: 100,
                    ic_tx_misses: 1_700,
                    page_walks: 1_300,
                    instructions: 10_000,
                    dram_accesses: 7_777,
                    resident_tx: 42,
                    lds_resident_tx: 30,
                    ic_resident_tx: 12,
                },
            ],
            // Distribution fields, mutually consistent with the scalar
            // counters above (the invariant checker's valid case):
            // slot counts 3000+400+200+100+0+1300 = 5000 requests, and
            // every latency histogram's count/sum equals its slot.
            attribution: CycleAttribution::from_counts(&[
                (3_000, 324_000),
                (400, 60_000),
                (200, 28_000),
                (100, 16_000),
                (0, 0),
                (1_300, 2_600_000),
            ]),
            dist_enabled: true,
            latency_hists: [
                hist_of(3_000, 108),
                hist_of(400, 150),
                hist_of(200, 140),
                hist_of(100, 160),
                Hist::new(),
                hist_of(1_300, 2_000),
            ],
            iommu_latency: [Hist::new(), Hist::new(), Hist::new(), hist_of(1_300, 2_000)],
            victim_lifetime_lds: hist_of(10, 500),
            victim_lifetime_ic: hist_of(4, 900),
            victim_reuse_lds: hist_of(10, 0),
            victim_reuse_ic: hist_of(4, 2),
            ..Default::default()
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample_stats();
        let text = run_stats_to_json_string(&s);
        let parsed = Json::parse(&text).expect("well-formed JSON");
        let back = run_stats_from_json(&parsed).expect("schema-complete");
        assert_eq!(back, s);
    }

    #[test]
    fn json_missing_field_rejected() {
        let s = sample_stats();
        let Json::Obj(mut fields) = run_stats_to_json(&s) else { panic!("object") };
        fields.retain(|(k, _)| k != "page_walks");
        assert!(run_stats_from_json(&Json::Obj(fields)).is_none());
    }

    #[test]
    fn epochs_csv_round_trip_is_exact() {
        let s = sample_stats();
        let csv = epochs_to_csv(&s.epochs);
        let back = epochs_from_csv(&csv).expect("well-formed CSV");
        assert_eq!(back, s.epochs);
    }

    #[test]
    fn epochs_csv_rejects_wrong_header() {
        assert!(epochs_from_csv("bogus,header\n1,2\n").is_none());
        assert!(epochs_from_csv("").is_none());
    }

    #[test]
    fn runs_csv_has_row_per_run_and_header() {
        let s = sample_stats();
        let csv = runs_to_csv(&[&s, &s]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("app,total_cycles"));
        assert!(lines[1].starts_with("GUPS,3977625,"));
    }

    #[test]
    fn v2_export_is_byte_stable() {
        let s = sample_stats();
        let first = run_stats_to_json_string(&s);
        let parsed = Json::parse(&first).expect("well-formed JSON");
        let back = run_stats_from_json(&parsed).expect("schema-complete");
        let second = run_stats_to_json_string(&back);
        assert_eq!(first, second, "write → parse → write must be byte-stable");
    }

    #[test]
    fn v1_document_still_parses_with_empty_distributions() {
        let s = sample_stats();
        let Json::Obj(mut fields) = run_stats_to_json(&s) else { panic!("object") };
        // Downgrade to a v1 document: stamp version 1 and strip every
        // field v1 never carried.
        let v2_only = [
            "attribution",
            "dist_enabled",
            "latency_hists",
            "iommu_latency",
            "victim_lifetime_lds",
            "victim_lifetime_ic",
            "victim_reuse_lds",
            "victim_reuse_ic",
        ];
        fields.retain(|(k, _)| !v2_only.contains(&k.as_str()));
        for (k, v) in fields.iter_mut() {
            if k == "schema_version" {
                *v = Json::from(1u64);
            }
        }
        let back = run_stats_from_json(&Json::Obj(fields)).expect("v1 parses");
        assert_eq!(back.total_cycles, s.total_cycles);
        assert!(!back.dist_enabled);
        assert_eq!(back.attribution, CycleAttribution::default());
        assert!(back.latency_hists.iter().all(Hist::is_empty));
        assert!(check_distribution_invariants(&back, 1).is_empty(), "v1 has no distribution invariants");
    }

    #[test]
    fn corrupt_histogram_bucket_totals_rejected() {
        let s = sample_stats();
        let text = run_stats_to_json_string(&s);
        // Tamper: halve the walk-path latency histogram's scalar count
        // without touching its buckets — from_parts must notice.
        let tampered = text.replace("\"count\":1300", "\"count\":650");
        assert_ne!(tampered, text, "fixture must contain the walk-path count");
        let parsed = Json::parse(&tampered).expect("still well-formed JSON");
        assert!(run_stats_from_json(&parsed).is_none(), "bucket/count mismatch must reject");
    }

    #[test]
    fn distribution_invariants_catch_violations() {
        let s = sample_stats();
        assert!(check_distribution_invariants(&s, STATS_SCHEMA_VERSION).is_empty(), "sample is valid");
        // Attribution slot drifts from the scalar counter.
        let mut s1 = sample_stats();
        s1.attribution.slots[2].count += 1;
        let p1 = check_distribution_invariants(&s1, STATS_SCHEMA_VERSION);
        assert!(!p1.is_empty());
        // Histogram totals drift from the attribution.
        let mut s2 = sample_stats();
        s2.latency_hists[0].record(5);
        assert!(!check_distribution_invariants(&s2, STATS_SCHEMA_VERSION).is_empty());
        // Lifetime/reuse pairing broken.
        let mut s3 = sample_stats();
        s3.victim_reuse_lds.record(1);
        assert!(!check_distribution_invariants(&s3, STATS_SCHEMA_VERSION).is_empty());
        // Disabled recording must mean empty histograms.
        let mut s4 = sample_stats();
        s4.dist_enabled = false;
        assert!(!check_distribution_invariants(&s4, STATS_SCHEMA_VERSION).is_empty());
        // A v1 document is never subjected to these checks.
        assert!(check_distribution_invariants(&s1, 1).is_empty());
    }

    #[test]
    fn epochs_csv_accepts_legacy_v1_header() {
        let s = sample_stats();
        let csv = epochs_to_csv(&s.epochs);
        // Build the legacy variant: drop the two gauge columns from the
        // header and every row.
        let legacy: String = csv
            .lines()
            .map(|line| {
                let cols: Vec<&str> = line.split(',').collect();
                cols[..EPOCH_COLUMNS_V1].join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = epochs_from_csv(&legacy).expect("legacy header accepted");
        assert_eq!(back.len(), s.epochs.len());
        assert_eq!(back[1].resident_tx, 42);
        assert_eq!(back[1].lds_resident_tx, 0, "gauges default in legacy CSV");
        // A 15-column in-between header is still rejected.
        let odd: String = csv
            .lines()
            .map(|line| {
                let cols: Vec<&str> = line.split(',').collect();
                cols[..EPOCH_COLUMNS_V1 + 1].join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(epochs_from_csv(&odd).is_none());
    }

    /// A [`SamplingMeta`] mutually consistent with [`sample_stats`]:
    /// windows partition the 10k instructions and the 3,977,625-cycle
    /// event clock.
    fn sample_sampling() -> SamplingMeta {
        SamplingMeta {
            warmup_window: 30_000,
            detail_window: 10_000,
            fastforward_window: 40_000,
            detail_intervals: 2,
            warmup_insts: 3_000,
            detail_insts: 2_000,
            fastforward_insts: 5_000,
            warmup_cycles: 1_000_000,
            detail_cycles: 1_500_000,
            fastforward_cycles: 1_477_625,
            extrapolated_cycles: 6_000_000,
            measured_cycles: 3_977_625,
            error_bound_pct: 1.25,
            side_cache_error_bound_pct: 0.4,
            checkpoint_restored: true,
        }
    }

    #[test]
    fn sampled_stats_round_trip_and_invariants() {
        let mut s = sample_stats();
        s.sampling = Some(sample_sampling());
        s.total_cycles = 7_500_000; // detail + extrapolated
        let text = run_stats_to_json_string(&s);
        let parsed = Json::parse(&text).expect("well-formed JSON");
        let back = run_stats_from_json(&parsed).expect("schema-complete");
        assert_eq!(back, s);
        assert!(check_sampling_invariants(&back).is_empty(), "sample is valid");
        // The epoch clock check follows measured_cycles, not the
        // extrapolated total.
        assert!(check_epoch_invariants(&s).is_empty());
        // Broken instruction partition, cycle partition, and total are
        // all caught.
        let mut bad = s.clone();
        bad.sampling.as_mut().unwrap().detail_insts += 1;
        assert!(!check_sampling_invariants(&bad).is_empty());
        let mut bad2 = s.clone();
        bad2.total_cycles += 1;
        assert!(!check_sampling_invariants(&bad2).is_empty());
        let mut bad3 = s.clone();
        bad3.sampling.as_mut().unwrap().warmup_cycles += 1;
        assert!(!check_sampling_invariants(&bad3).is_empty());
        // Exact runs have no sampling invariants.
        assert!(check_sampling_invariants(&sample_stats()).is_empty());
    }

    #[test]
    fn compact_default_and_pretty_parse_identically() {
        let s = sample_stats();
        let compact = run_stats_to_json_string(&s);
        let pretty = run_stats_to_json_string_pretty(&s);
        assert!(compact.len() < pretty.len());
        assert!(!compact.contains(": "), "compact form carries no separators");
        let a = run_stats_from_json(&Json::parse(&compact).unwrap()).unwrap();
        let b = run_stats_from_json(&Json::parse(&pretty).unwrap()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, s);
    }

    #[test]
    fn v2_document_parses_without_sampling() {
        let s = sample_stats();
        let Json::Obj(mut fields) = run_stats_to_json(&s) else { panic!("object") };
        fields.retain(|(k, _)| k != "sampling");
        for (k, v) in fields.iter_mut() {
            if k == "schema_version" {
                *v = Json::from(2u64);
            }
        }
        let back = run_stats_from_json(&Json::Obj(fields)).expect("v2 parses");
        assert_eq!(back.sampling, None);
        // A v3 document must carry the field, even if null.
        let Json::Obj(mut f3) = run_stats_to_json(&s) else { panic!("object") };
        f3.retain(|(k, _)| k != "sampling");
        assert!(run_stats_from_json(&Json::Obj(f3)).is_none());
    }

    /// A two-tenant split of [`sample_stats`]'s counters: every field
    /// sums to the corresponding global, so the tenancy invariants
    /// hold by construction.
    fn tenanted_stats() -> RunStats {
        let mut s = sample_stats();
        s.kernels = vec![
            KernelStats { name: "a".into(), cycles: 60, instructions: 8, ..Default::default() },
            KernelStats { name: "b".into(), cycles: 39, instructions: 4, ..Default::default() },
        ];
        s.tenants = vec![
            TenantStats {
                vmid: 0,
                app: "a".into(),
                cycles: 60,
                instructions: 6_000,
                translation_requests: 3_000,
                l1_tlb: HitMiss { hits: 2_000, misses: 1_000 },
                lds_tx: HitMiss { hits: 150, misses: 850 },
                ic_tx: HitMiss { hits: 60, misses: 940 },
                l2_tlb: HitMiss { hits: 400, misses: 600 },
                page_walks: 600,
                shootdowns: 3,
                solo_cycles: 50,
            },
            TenantStats {
                vmid: 1,
                app: "b".into(),
                cycles: 39,
                instructions: 4_000,
                translation_requests: 2_000,
                l1_tlb: HitMiss { hits: 1_000, misses: 1_000 },
                lds_tx: HitMiss { hits: 50, misses: 950 },
                ic_tx: HitMiss { hits: 40, misses: 760 },
                l2_tlb: HitMiss { hits: 300, misses: 700 },
                page_walks: 700,
                shootdowns: 0,
                solo_cycles: 0,
            },
        ];
        s
    }

    #[test]
    fn untenanted_document_stamps_v4_without_tenants_field() {
        let s = sample_stats();
        assert_eq!(run_stats_schema_version(&s), STATS_SCHEMA_VERSION_UNTENANTED);
        let text = run_stats_to_json_string(&s);
        assert!(!text.contains("\"tenants\""), "no v5 field on an untenanted export");
        assert!(text.contains("\"schema_version\":4"));
    }

    #[test]
    fn tenanted_stats_round_trip_and_stamp_v5() {
        let s = tenanted_stats();
        assert_eq!(run_stats_schema_version(&s), STATS_SCHEMA_VERSION_TENANTED);
        let text = run_stats_to_json_string(&s);
        assert!(text.contains("\"schema_version\":5"));
        let parsed = Json::parse(&text).expect("well-formed JSON");
        let back = run_stats_from_json(&parsed).expect("schema-complete");
        assert_eq!(back, s);
        // Byte stability through a second round trip.
        assert_eq!(run_stats_to_json_string(&back), text);
        // A v5 stamp without the array must reject.
        let Json::Obj(mut fields) = run_stats_to_json(&s) else { panic!("object") };
        fields.retain(|(k, _)| k != "tenants");
        assert!(run_stats_from_json(&Json::Obj(fields)).is_none());
    }

    /// [`sample_stats`] with the coalescing aggregate attached: 100
    /// inserts, 40 of them covering (260 pages total), 55 covering
    /// hits, 3 split by shootdowns.
    fn coalesced_stats() -> RunStats {
        let mut s = sample_stats();
        s.coalescing = Some(CoalescingStats {
            inserts: 100,
            entries_coalesced: 40,
            span_pages: 260,
            coalesced_hits: 55,
            shootdown_splits: 3,
        });
        s
    }

    #[test]
    fn coalesced_stats_round_trip_and_stamp_v6() {
        let s = coalesced_stats();
        assert_eq!(run_stats_schema_version(&s), STATS_SCHEMA_VERSION);
        let text = run_stats_to_json_string(&s);
        assert!(text.contains("\"schema_version\":6"));
        assert!(text.contains("\"reach_multiplier\":2.6"));
        // An untenanted coalescing document carries no `tenants` array.
        assert!(!text.contains("\"tenants\""));
        let parsed = Json::parse(&text).expect("well-formed JSON");
        let back = run_stats_from_json(&parsed).expect("schema-complete");
        assert_eq!(back, s);
        assert_eq!(run_stats_to_json_string(&back), text, "byte-stable");
        // A v6 stamp without the object must reject.
        let Json::Obj(mut fields) = run_stats_to_json(&s) else { panic!("object") };
        fields.retain(|(k, _)| k != "coalescing");
        assert!(run_stats_from_json(&Json::Obj(fields)).is_none());
        // Tenancy and coalescing compose: both conditional fields.
        let mut both = tenanted_stats();
        both.coalescing = s.coalescing;
        assert_eq!(run_stats_schema_version(&both), STATS_SCHEMA_VERSION);
        let bt = run_stats_to_json_string(&both);
        assert!(bt.contains("\"tenants\"") && bt.contains("\"coalescing\""));
        let bb = run_stats_from_json(&Json::parse(&bt).unwrap()).expect("parses");
        assert_eq!(bb, both);
    }

    #[test]
    fn non_coalescing_document_carries_no_v6_field() {
        let text = run_stats_to_json_string(&sample_stats());
        assert!(!text.contains("\"coalescing\""), "no v6 field when coalescing is off");
        assert!(text.contains("\"schema_version\":4"));
        let tt = run_stats_to_json_string(&tenanted_stats());
        assert!(!tt.contains("\"coalescing\""));
        assert!(tt.contains("\"schema_version\":5"));
    }

    #[test]
    fn coalescing_invariants_catch_violations() {
        let s = coalesced_stats();
        assert!(check_coalescing_invariants(&s).is_empty(), "sample is valid");
        assert!(check_coalescing_invariants(&sample_stats()).is_empty(), "absent is exempt");
        // More coalesced entries than inserts.
        let mut s1 = coalesced_stats();
        s1.coalescing.as_mut().unwrap().entries_coalesced = 101;
        assert!(!check_coalescing_invariants(&s1).is_empty());
        // Too few pages for the coalesced-insert count.
        let mut s2 = coalesced_stats();
        s2.coalescing.as_mut().unwrap().span_pages = 120;
        assert!(!check_coalescing_invariants(&s2).is_empty());
        // Covering hits without any coalesced insert.
        let mut s3 = coalesced_stats();
        let c3 = s3.coalescing.as_mut().unwrap();
        c3.entries_coalesced = 0;
        c3.span_pages = c3.inserts;
        assert!(!check_coalescing_invariants(&s3).is_empty());
        // All-zero (coalescing on, nothing coalesced) is valid.
        let mut s4 = coalesced_stats();
        s4.coalescing = Some(CoalescingStats::default());
        assert!(check_coalescing_invariants(&s4).is_empty());
        assert_eq!(s4.coalescing.unwrap().reach_multiplier(), 1.0);
    }

    #[test]
    fn tenancy_invariants_catch_violations() {
        let s = tenanted_stats();
        assert!(check_tenancy_invariants(&s).is_empty(), "sample is valid");
        assert!(check_tenancy_invariants(&sample_stats()).is_empty(), "untenanted is exempt");
        // A counter drifts from the global total.
        let mut s1 = tenanted_stats();
        s1.tenants[0].page_walks += 1;
        assert!(!check_tenancy_invariants(&s1).is_empty());
        // Cycles must sum to the serial kernel cycles.
        let mut s2 = tenanted_stats();
        s2.tenants[1].cycles += 1;
        assert!(!check_tenancy_invariants(&s2).is_empty());
        // VM-ID order is part of the contract.
        let mut s3 = tenanted_stats();
        s3.tenants.swap(0, 1);
        assert!(!check_tenancy_invariants(&s3).is_empty());
    }

    #[test]
    fn epoch_invariants_catch_violations() {
        let mut s = sample_stats();
        assert!(check_epoch_invariants(&s).is_empty(), "sample is valid");
        s.epochs[0].translation_requests = 9_999_999; // breaks monotonicity
        assert!(!check_epoch_invariants(&s).is_empty());
        let mut s2 = sample_stats();
        s2.epochs.last_mut().unwrap().page_walks += 1; // breaks final == totals
        assert!(!check_epoch_invariants(&s2).is_empty());
        let mut s3 = sample_stats();
        s3.epochs.clear(); // epoch_len set but no samples
        assert!(!check_epoch_invariants(&s3).is_empty());
    }
}
