//! Regenerates every table and figure. `--quick`/`--tiny` reduce the
//! scale; `--csv <dir>` additionally writes the main matrices as CSV
//! for external plotting.
fn main() {
    let scale = scale_from_args();
    println!("{}", gtr_bench::figures::all(scale));
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let dir = args.get(i + 1).map(String::as_str).unwrap_or("results");
        std::fs::create_dir_all(dir).expect("create csv dir");
        let m = gtr_bench::figures::main_matrix(scale);
        std::fs::write(format!("{dir}/fig13b_improvement.csv"), m.improvement_csv())
            .expect("write csv");
        std::fs::write(
            format!("{dir}/fig14b_walks.csv"),
            m.normalized_csv(|s| s.page_walks as f64),
        )
        .expect("write csv");
        std::fs::write(
            format!("{dir}/fig13c_energy.csv"),
            m.normalized_csv(|s| s.dram_energy_nj),
        )
        .expect("write csv");
        eprintln!("CSV written to {dir}/");
    }
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
