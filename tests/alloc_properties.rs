//! Property battery for the contiguity-aware page allocator
//! (`gtr_vm::alloc`, `PageLayout::Contig`): the layout is a bijection
//! for every seed and fragmentation fraction, its contiguity-run
//! statistics degrade monotonically in the fragmentation knob, and
//! `f = 0` produces exactly one maximal run per allocation region.
//!
//! Driven by the workspace's seeded [`SplitMix64`] generator, like
//! `tests/properties.rs`: every case is fully determined by its seed.

use std::collections::HashSet;

use gpu_translation_reach::sim::rng::SplitMix64;
use gpu_translation_reach::vm::addr::{PageSize, Ppn, Vpn};
use gpu_translation_reach::vm::alloc::{
    contiguity_runs, ContiguityStats, PageLayout, REGION_PAGES_LOG2,
};
use gpu_translation_reach::vm::page_table::PageTable;

/// Runs `case` once per seed; panics carry the seed for replay.
fn check_cases(cases: u64, case: impl Fn(&mut SplitMix64)) {
    for seed in 0..cases {
        let mut rng = SplitMix64::new(0xA110C ^ seed);
        case(&mut rng);
    }
}

fn contig_table(f: f64, seed: u64) -> PageTable {
    PageTable::new(PageSize::Size4K).with_layout(PageLayout::contig(f, seed))
}

/// The VPN-sorted `(vpn, ppn)` pairs of a table, as
/// [`contiguity_runs`] expects them.
fn layout_pairs(pt: &PageTable) -> Vec<(Vpn, Ppn)> {
    let mut vpns = pt.mapped_vpns();
    vpns.sort_unstable_by_key(|v| v.0);
    vpns.iter().map(|&v| (v, pt.translate(v).expect("mapped"))).collect()
}

/// A random mix of region-clustered and isolated VPNs — the footprint
/// shape the properties are quantified over.
fn random_vpns(rng: &mut SplitMix64) -> Vec<Vpn> {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    let mut vpns: HashSet<u64> = HashSet::new();
    for _ in 0..(1 + rng.next_below(4)) {
        let base = rng.next_below(1 << 20) & !(region_pages - 1);
        let start = rng.next_below(region_pages);
        let len = 1 + rng.next_below(region_pages - start);
        for v in start..start + len {
            vpns.insert(base + v);
        }
    }
    for _ in 0..rng.next_below(64) {
        vpns.insert(rng.next_below(1 << 20));
    }
    let mut vpns: Vec<Vpn> = vpns.into_iter().map(Vpn).collect();
    // Map order is allocation order for the scattered pool — shuffle
    // so the properties do not secretly depend on sorted insertion.
    for i in (1..vpns.len()).rev() {
        vpns.swap(i, rng.next_below(i as u64 + 1) as usize);
    }
    vpns
}

/// For any seed and fragmentation fraction, the layout is a bijection:
/// distinct VPNs always land on distinct frames, and remapping an
/// already-mapped VPN returns the same frame (idempotence).
#[test]
fn contig_layout_is_bijective_for_any_seed_and_fragmentation() {
    check_cases(24, |rng| {
        let f = rng.next_below(1001) as f64 / 1000.0;
        let seed = rng.next_u64();
        let mut pt = contig_table(f, seed);
        let vpns = random_vpns(rng);
        let mut frames: HashSet<u64> = HashSet::new();
        for &v in &vpns {
            let t = pt.map_vpn(v);
            assert!(
                frames.insert(t.ppn.0),
                "f={f} seed={seed:#x}: frame {:?} reused at vpn {v:?}",
                t.ppn
            );
        }
        for &v in &vpns {
            let before = pt.translate(v).expect("mapped");
            assert_eq!(pt.map_vpn(v).ppn, before, "remap must be idempotent");
        }
    });
}

/// Contiguity-run statistics are monotone in the fragmentation knob:
/// raising `f` over the same footprint (same seed, same map order)
/// never lengthens the longest run, never raises the mean run length,
/// and never decreases the number of runs. This is the macroscopic
/// consequence of the nested break-out sets — more fragmentation can
/// only cut runs, never heal them.
#[test]
fn run_statistics_monotone_in_fragmentation() {
    check_cases(16, |rng| {
        let seed = rng.next_u64();
        let vpns = random_vpns(rng);
        let mut prev: Option<(f64, ContiguityStats)> = None;
        for f in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let mut pt = contig_table(f, seed);
            for &v in &vpns {
                pt.map_vpn(v);
            }
            let stats = contiguity_runs(&layout_pairs(&pt));
            assert_eq!(stats.pages, vpns.len() as u64);
            if let Some((pf, p)) = prev {
                assert!(
                    stats.max_run <= p.max_run,
                    "seed {seed:#x}: max_run grew from {} (f={pf}) to {} (f={f})",
                    p.max_run,
                    stats.max_run
                );
                assert!(
                    stats.mean_run() <= p.mean_run() + 1e-12,
                    "seed {seed:#x}: mean_run grew from {} (f={pf}) to {} (f={f})",
                    p.mean_run(),
                    stats.mean_run()
                );
                assert!(
                    stats.runs >= p.runs,
                    "seed {seed:#x}: runs shrank from {} (f={pf}) to {} (f={f})",
                    p.runs,
                    stats.runs
                );
            }
            prev = Some((f, stats));
        }
    });
}

/// At `f = 0.0` every fully mapped region is one maximal run: mapping
/// N whole regions yields exactly N runs of exactly `2^REGION_PAGES_LOG2`
/// pages — region permutation scatters regions across DRAM but never
/// fuses two of them into a longer run.
#[test]
fn zero_fragmentation_yields_one_maximal_run_per_region() {
    check_cases(16, |rng| {
        let region_pages = 1u64 << REGION_PAGES_LOG2;
        let seed = rng.next_u64();
        let mut pt = contig_table(0.0, seed);
        let mut regions: HashSet<u64> = HashSet::new();
        for _ in 0..(2 + rng.next_below(6)) {
            regions.insert(rng.next_below(1 << 11));
        }
        for &r in &regions {
            for v in 0..region_pages {
                pt.map_vpn(Vpn(r * region_pages + v));
            }
        }
        let stats = contiguity_runs(&layout_pairs(&pt));
        assert_eq!(stats.pages, regions.len() as u64 * region_pages);
        assert_eq!(
            stats.runs,
            regions.len() as u64,
            "seed {seed:#x}: each region must be exactly one maximal run"
        );
        assert_eq!(stats.max_run, region_pages);
        assert!((stats.mean_run() - region_pages as f64).abs() < 1e-9);
    });
}

/// The two extremes bracket the knob: `f = 0` maximizes contiguity on
/// a whole-region footprint, `f = 1` destroys it completely (every
/// page breaks out into the scattered pool, whose odd-multiplier
/// permutation never produces adjacent frames for adjacent pages).
#[test]
fn full_fragmentation_leaves_no_runs() {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    let mut pt = contig_table(1.0, 0xF00D);
    for v in 0..4 * region_pages {
        pt.map_vpn(Vpn(v));
    }
    let stats = contiguity_runs(&layout_pairs(&pt));
    assert_eq!(stats.pages, 4 * region_pages);
    assert_eq!(stats.runs, stats.pages, "every page must be its own run");
    assert_eq!(stats.max_run, 1);
}

/// `contiguity_span` agrees with the allocator end to end: under
/// `f = 0` a fully mapped region grants the full region span at every
/// page, and the span the page table reports is always *true* — frame
/// arithmetic holds for every page the span claims to cover.
#[test]
fn reported_spans_are_honest() {
    check_cases(12, |rng| {
        let region_pages = 1u64 << REGION_PAGES_LOG2;
        let f = [0.0, 0.1, 0.3][rng.next_below(3) as usize];
        let seed = rng.next_u64();
        let mut pt = contig_table(f, seed);
        let base = rng.next_below(1 << 12) * region_pages;
        for v in 0..region_pages {
            pt.map_vpn(Vpn(base + v));
        }
        let max = REGION_PAGES_LOG2 as u8;
        for v in 0..region_pages {
            let vpn = Vpn(base + v);
            let span = pt.contiguity_span(vpn, max);
            if f == 0.0 {
                assert_eq!(span, max, "seed {seed:#x}: f=0 must grant the full region");
            }
            let span_base = vpn.0 & !((1u64 << span) - 1);
            let base_ppn = pt.translate(Vpn(span_base)).expect("span base mapped");
            for o in 0..(1u64 << span) {
                assert_eq!(
                    pt.translate(Vpn(span_base + o)),
                    Some(Ppn(base_ppn.0 + o)),
                    "seed {seed:#x} f={f}: span {span} at {vpn:?} is not contiguous"
                );
            }
        }
    });
}
