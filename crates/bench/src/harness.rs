//! Shared experiment machinery: run matrices, geomeans, table printing,
//! and the checkpoint-shared sampled execution mode.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gtr_core::checkpoint::{stream_fingerprint, Checkpoint};
use gtr_core::config::{ReachConfig, SamplingConfig};
use gtr_core::stats::RunStats;
use gtr_core::system::System;
use gtr_ducati::Ducati;
use gtr_gpu::config::GpuConfig;
use gtr_gpu::kernel::AppTrace;
use gtr_sim::prof;
use gtr_sim::stats::geomean;
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

/// The application names in Table-2 order.
pub fn app_names() -> Vec<&'static str> {
    suite::TABLE2.iter().map(|i| i.name).collect()
}

/// Runs one application under one configuration.
pub fn run_one(app: &AppTrace, gpu: GpuConfig, reach: ReachConfig) -> RunStats {
    System::new(gpu, reach).run(app)
}

/// Runs one application with a DUCATI side cache attached.
pub fn run_one_with_ducati(
    app: &AppTrace,
    gpu: GpuConfig,
    reach: ReachConfig,
    pom_entries: u64,
) -> RunStats {
    System::new(gpu, reach)
        .with_side_cache(Box::new(Ducati::new(pom_entries)))
        .run(app)
}

/// How matrix cells execute: exact detailed simulation (the default)
/// or interval-sampled with warmup checkpoints shared across variants.
#[derive(Debug, Clone, Default)]
pub struct RunMode {
    /// Interval-sampling windows; `None` = exact simulation.
    pub sampling: Option<SamplingConfig>,
    /// On-disk cache directory for captured checkpoints; `None` keeps
    /// them in memory only (still `Arc`-shared across the matrix).
    pub checkpoint_dir: Option<PathBuf>,
    /// Worker threads for matrix cells (`--threads N`); 0 = the
    /// machine's available parallelism. Results are bit-identical for
    /// any value — each cell is an independent deterministic
    /// simulation and the pool merges results in `(cycle, shard, seq)`
    /// order (`gtr_sim::shard`, ARCHITECTURE §8).
    pub workers: usize,
}

impl RunMode {
    /// Exact detailed simulation (bit-identical to the seed behavior).
    pub fn exact() -> Self {
        Self::default()
    }

    /// Pins the matrix worker-thread count (`--threads N`); 0 restores
    /// the available-parallelism default.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The effective worker count: `workers`, or the machine's
    /// available parallelism when unset.
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            crate::pool::default_workers()
        } else {
            self.workers
        }
    }

    /// Interval-sampled simulation. When `cfg.warmup > 0` the harness
    /// captures one warmup [`Checkpoint`] per `(app, distinct
    /// translation-stream fingerprint)` pair and `Arc`-shares it
    /// across every variant cell it covers — a whole timing-side
    /// sweep axis (L2 TLB sizes, perfect-TLB, I-cache sharers, …)
    /// reuses a single capture.
    pub fn sampled(cfg: SamplingConfig) -> Self {
        Self { sampling: Some(cfg), ..Self::default() }
    }

    /// Caches captured checkpoints under `dir` (validated on load by
    /// [`CheckpointKey`](gtr_core::checkpoint::CheckpointKey); stale
    /// or corrupt files are silently re-captured).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }
}

/// Writes `bytes` to `path` atomically: the data lands in a uniquely
/// named temporary file in the target directory first and is then
/// renamed into place. `rename(2)` is atomic on POSIX filesystems, so
/// a concurrent reader — another serve worker, or a second sweep
/// sharing the same `--checkpoint-dir` — observes either the old file
/// or the complete new one, never a torn prefix. Writers racing on
/// the same path both succeed; last rename wins with identical
/// content (captures are deterministic). The temporary is removed on
/// write failure so a full disk cannot strand partials that a later
/// directory count would miscount.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write needs a file path"))?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = path.with_file_name(tmp_name);
    if let Err(e) = std::fs::write(&tmp, bytes) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads a checkpoint from the disk cache or captures it fresh (and
/// saves it back when a cache directory is given). File names encode
/// the app, stream fingerprint, and warmup window; cached files that
/// fail [`Checkpoint::matches`] are re-captured.
pub fn load_or_capture(app: &AppTrace, gpu: &GpuConfig, warmup: u64, dir: Option<&Path>) -> Checkpoint {
    let fp = stream_fingerprint(gpu);
    let path = dir.map(|d| d.join(format!("ckpt_{}_{fp:016x}_{warmup}.bin", app.name())));
    if let Some(p) = &path {
        let _probe = prof::span_with("ckpt:probe", || app.name().to_string());
        if let Ok(bytes) = std::fs::read(p) {
            if let Some(ck) = Checkpoint::from_bytes(&bytes) {
                if ck.matches(app.name(), gpu, warmup) {
                    prof::add("ckpt.cache_hit", 1);
                    return ck;
                }
            }
        }
    }
    if path.is_some() {
        prof::add("ckpt.cache_miss", 1);
    }
    let ck = Checkpoint::capture(app, gpu, warmup);
    if let Some(p) = &path {
        if let Some(parent) = p.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = atomic_write(p, &ck.to_bytes());
    }
    ck
}

/// Stamps every per-tenant record of `stats` with the solo-run cycle
/// baseline that [`gtr_core::stats::TenantStats::slowdown`] divides
/// by. The basis is the solo run's kernel-cycle sum — the measured
/// clock, which is what the tenanted cells' per-tenant `cycles` also
/// report — so the ratio is like-for-like in exact *and* sampled mode
/// (TENANCY.md §4). Intended for replicated sweeps where every tenant
/// runs a copy of the same application; a no-op on untenanted stats.
pub fn fill_solo_cycles(stats: &mut RunStats, solo: &RunStats) {
    let solo_cycles: u64 = solo.kernels.iter().map(|k| k.cycles).sum();
    for t in &mut stats.tenants {
        t.solo_cycles = solo_cycles;
    }
}

/// A named machine+reach configuration for a run matrix.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Label shown in tables.
    pub label: String,
    /// Machine configuration.
    pub gpu: GpuConfig,
    /// Reconfigurable-architecture configuration.
    pub reach: ReachConfig,
    /// Attach a DUCATI side cache with this many POM entries.
    pub ducati_entries: Option<u64>,
    /// Arm distribution recording (`System::with_distributions`) for
    /// every run of this variant, filling the schema-v2 histogram
    /// fields of each cell's [`RunStats`].
    pub distributions: bool,
}

impl Variant {
    /// A variant on the default Table-1 machine.
    pub fn new(label: impl Into<String>, reach: ReachConfig) -> Self {
        Self {
            label: label.into(),
            gpu: GpuConfig::default(),
            reach,
            ducati_entries: None,
            distributions: false,
        }
    }

    /// A variant with a custom machine.
    pub fn with_gpu(label: impl Into<String>, gpu: GpuConfig, reach: ReachConfig) -> Self {
        Self {
            label: label.into(),
            gpu,
            reach,
            ducati_entries: None,
            distributions: false,
        }
    }

    /// Adds a DUCATI side cache.
    pub fn with_ducati(mut self, entries: u64) -> Self {
        self.ducati_entries = Some(entries);
        self
    }

    /// Arms distribution recording for this variant's runs.
    pub fn with_distributions(mut self) -> Self {
        self.distributions = true;
        self
    }

    /// Executes this variant on one application.
    pub fn run(&self, app: &AppTrace) -> RunStats {
        let mut sys = System::new(self.gpu.clone(), self.reach);
        if let Some(entries) = self.ducati_entries {
            sys = sys.with_side_cache(Box::new(Ducati::new(entries)));
        }
        if self.distributions {
            sys = sys.with_distributions();
        }
        sys.run(app)
    }

    /// Executes this variant on one application under an execution
    /// mode: exact when `sampling` is `None` (identical to
    /// [`Variant::run`]), otherwise interval-sampled. A provided
    /// `checkpoint` replaces the warmup window — the stream re-warms
    /// this variant's own structures functionally and the sampled run
    /// starts measuring immediately.
    pub fn run_with_mode(
        &self,
        app: &AppTrace,
        sampling: Option<SamplingConfig>,
        checkpoint: Option<&Checkpoint>,
    ) -> RunStats {
        let Some(cfg) = sampling else {
            return self.run(app);
        };
        let mut sys = System::new(self.gpu.clone(), self.reach);
        if let Some(entries) = self.ducati_entries {
            sys = sys.with_side_cache(Box::new(Ducati::new(entries)));
        }
        if self.distributions {
            sys = sys.with_distributions();
        }
        let cfg = if let Some(ck) = checkpoint {
            sys.restore_checkpoint(ck);
            cfg.without_warmup()
        } else {
            cfg
        };
        sys.with_sampling(cfg).run(app)
    }
}

/// Results of a full (apps × variants) matrix, baseline first.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Application names, in run order.
    pub apps: Vec<String>,
    /// Baseline stats per app.
    pub baseline: Vec<RunStats>,
    /// Per variant: label and per-app stats.
    pub variants: Vec<(String, Vec<RunStats>)>,
}

impl Matrix {
    /// Runs the whole Table-2 suite: the baseline plus every variant.
    /// Cells run on a work-stealing pool sized to the machine (each
    /// simulation itself is deterministic and single-threaded).
    pub fn run(scale: Scale, baseline: Variant, variants: Vec<Variant>) -> Self {
        let apps = suite::all(scale);
        Self::run_apps(&apps, baseline, variants)
    }

    /// Runs an explicit application list on the default worker count.
    pub fn run_apps(apps: &[AppTrace], baseline: Variant, variants: Vec<Variant>) -> Self {
        Self::run_apps_with_threads(apps, baseline, variants, crate::pool::default_workers())
    }

    /// Runs an explicit application list on `workers` threads.
    ///
    /// Every (application × variant) cell is an independent work item
    /// in a shared steal queue, so the sweep's tail is bounded by one
    /// cell rather than the slowest application's whole row (the seed
    /// scheduler spawned one thread per application — pure
    /// oversubscription on machines with fewer cores than apps).
    /// Results are bit-identical for any `workers` value: a cell's
    /// outcome depends only on its (app, variant) inputs, never on
    /// which thread ran it or in what order.
    pub fn run_apps_with_threads(
        apps: &[AppTrace],
        baseline: Variant,
        variants: Vec<Variant>,
        workers: usize,
    ) -> Self {
        Self::run_apps_with_mode(apps, baseline, variants, &RunMode::exact(), workers)
    }

    /// Runs the whole Table-2 suite under an execution [`RunMode`].
    pub fn run_with_mode(
        scale: Scale,
        baseline: Variant,
        variants: Vec<Variant>,
        mode: &RunMode,
    ) -> Self {
        let apps = suite::all(scale);
        let workers = mode.resolved_workers();
        Self::run_apps_with_mode(&apps, baseline, variants, mode, workers)
    }

    /// Runs an explicit application list under an execution
    /// [`RunMode`] on `workers` threads.
    ///
    /// In sampled mode with a warmup window, the harness first
    /// deduplicates the distinct GPU configurations among
    /// baseline+variants by [`stream_fingerprint`] — two GPUs that
    /// differ only in timing-side knobs (TLB geometry, cache
    /// latencies, I-cache sharing) capture identical translation
    /// streams and therefore share one capture — then captures, or
    /// loads from `mode.checkpoint_dir`, one [`Checkpoint`] per
    /// `(app, distinct stream)` pair on the worker pool, and
    /// `Arc`-shares each checkpoint across every matrix cell it
    /// covers. Cells restore the checkpoint (functional re-warm of
    /// their own victim structures) and run sampled with the warmup
    /// window elided. Results remain bit-identical for any `workers`
    /// value.
    pub fn run_apps_with_mode(
        apps: &[AppTrace],
        baseline: Variant,
        variants: Vec<Variant>,
        mode: &RunMode,
        workers: usize,
    ) -> Self {
        let mut all_variants = vec![baseline];
        all_variants.extend(variants);
        let nv = all_variants.len();
        let _matrix_span =
            prof::span_with("matrix", || format!("{}x{} cells", apps.len(), nv));
        // (checkpoints laid out app-major, variant→gpu index, gpu count)
        let shared: Option<(Vec<Arc<Checkpoint>>, Vec<usize>, usize)> = match &mode.sampling {
            Some(cfg) if cfg.warmup > 0 => {
                let mut fps: Vec<u64> = Vec::new();
                let mut gpu_of_variant: Vec<usize> = Vec::with_capacity(nv);
                for v in &all_variants {
                    let fp = stream_fingerprint(&v.gpu);
                    let idx = fps.iter().position(|&f| f == fp).unwrap_or_else(|| {
                        fps.push(fp);
                        fps.len() - 1
                    });
                    gpu_of_variant.push(idx);
                }
                let ng = fps.len();
                let gpus: Vec<&GpuConfig> = (0..ng)
                    .map(|gi| {
                        let vi = gpu_of_variant
                            .iter()
                            .position(|&g| g == gi)
                            .expect("index came from a variant");
                        &all_variants[vi].gpu
                    })
                    .collect();
                let warmup = cfg.warmup;
                let dir = mode.checkpoint_dir.as_deref();
                let checkpoints = crate::pool::run_indexed(apps.len() * ng, workers, |i| {
                    let _span = prof::span_with("ckpt:acquire", || {
                        format!("{}#{}", apps[i / ng].name(), i % ng)
                    });
                    Arc::new(load_or_capture(&apps[i / ng], gpus[i % ng], warmup, dir))
                });
                Some((checkpoints, gpu_of_variant, ng))
            }
            _ => None,
        };
        let cells: Vec<RunStats> = crate::pool::run_indexed(apps.len() * nv, workers, |i| {
            let (a, v) = (i / nv, i % nv);
            // The span runs on whichever pool worker claimed the cell,
            // so the trace shows cells laid out across worker lanes;
            // `#i` is the shard stamp (the deterministic item index).
            let _span = prof::span_with("cell", || {
                format!("{}x{}#{i}", apps[a].name(), all_variants[v].label)
            });
            let ck = shared
                .as_ref()
                .map(|(cks, gpu_of_variant, ng)| &*cks[a * ng + gpu_of_variant[v]]);
            all_variants[v].run_with_mode(&apps[a], mode.sampling, ck)
        });
        let mut baseline_stats = Vec::with_capacity(apps.len());
        let mut variant_stats: Vec<(String, Vec<RunStats>)> = all_variants[1..]
            .iter()
            .map(|v| (v.label.clone(), Vec::with_capacity(apps.len())))
            .collect();
        for per_app in cells.chunks_exact(nv) {
            let mut it = per_app.iter();
            baseline_stats.push(it.next().expect("baseline run").clone());
            for (slot, stats) in variant_stats.iter_mut().zip(it) {
                slot.1.push(stats.clone());
            }
        }
        Self {
            apps: apps.iter().map(|a| a.name().to_string()).collect(),
            baseline: baseline_stats,
            variants: variant_stats,
        }
    }

    /// Percent improvement of variant `v` on app `a`.
    pub fn improvement(&self, v: usize, a: usize) -> f64 {
        gtr_sim::stats::improvement_pct(
            self.baseline[a].total_cycles,
            self.variants[v].1[a].total_cycles,
        )
    }

    /// Geometric-mean improvement of a variant across all apps (the
    /// paper reports geomean of speedups).
    pub fn geomean_improvement(&self, v: usize) -> f64 {
        let speedups = self
            .baseline
            .iter()
            .zip(&self.variants[v].1)
            .map(|(b, r)| b.total_cycles as f64 / r.total_cycles.max(1) as f64);
        (geomean(speedups) - 1.0) * 100.0
    }

    /// Geomean improvement over a subset of apps by name.
    pub fn geomean_improvement_subset(&self, v: usize, names: &[&str]) -> f64 {
        let speedups = self
            .apps
            .iter()
            .enumerate()
            .filter(|(_, a)| names.contains(&a.as_str()))
            .map(|(i, _)| {
                self.baseline[i].total_cycles as f64
                    / self.variants[v].1[i].total_cycles.max(1) as f64
            });
        (geomean(speedups) - 1.0) * 100.0
    }

    /// Formats a percent-improvement table (rows = variants).
    pub fn improvement_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {title}\n"));
        out.push_str(&row(
            "config",
            &self.apps.iter().map(String::as_str).collect::<Vec<_>>(),
            "GeoMean",
        ));
        for (v, (label, _)) in self.variants.iter().enumerate() {
            let cells: Vec<String> = (0..self.apps.len())
                .map(|a| format!("{:+.1}%", self.improvement(v, a)))
                .collect();
            out.push_str(&row(
                label,
                &cells.iter().map(String::as_str).collect::<Vec<_>>(),
                &format!("{:+.1}%", self.geomean_improvement(v)),
            ));
        }
        out
    }

    /// Formats a normalized-metric table (variant metric / baseline
    /// metric), e.g. normalized page walks or DRAM energy.
    pub fn normalized_table(
        &self,
        title: &str,
        metric: impl Fn(&RunStats) -> f64,
    ) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {title}\n"));
        out.push_str(&row(
            "config",
            &self.apps.iter().map(String::as_str).collect::<Vec<_>>(),
            "GeoMean",
        ));
        for (label, stats) in &self.variants {
            let ratios: Vec<f64> = self
                .baseline
                .iter()
                .zip(stats)
                .map(|(b, r)| {
                    let base = metric(b);
                    if base == 0.0 {
                        1.0
                    } else {
                        metric(r) / base
                    }
                })
                .collect();
            let cells: Vec<String> = ratios.iter().map(|x| format!("{x:.3}")).collect();
            out.push_str(&row(
                label,
                &cells.iter().map(String::as_str).collect::<Vec<_>>(),
                &format!("{:.3}", geomean(ratios.iter().copied())),
            ));
        }
        out
    }
}

impl Matrix {
    /// Serializes per-app percent improvements as CSV (header row of
    /// app names plus GeoMean; one row per variant) for external
    /// plotting pipelines.
    pub fn improvement_csv(&self) -> String {
        let mut out = String::from("config,");
        out.push_str(&self.apps.join(","));
        out.push_str(",geomean\n");
        for v in 0..self.variants.len() {
            out.push_str(&self.variants[v].0);
            for a in 0..self.apps.len() {
                out.push_str(&format!(",{:.2}", self.improvement(v, a)));
            }
            out.push_str(&format!(",{:.2}\n", self.geomean_improvement(v)));
        }
        out
    }

    /// Serializes a normalized metric as CSV (same layout as
    /// [`Matrix::improvement_csv`]).
    pub fn normalized_csv(&self, metric: impl Fn(&RunStats) -> f64) -> String {
        let mut out = String::from("config,");
        out.push_str(&self.apps.join(","));
        out.push('\n');
        for (label, stats) in &self.variants {
            out.push_str(label);
            for (b, r) in self.baseline.iter().zip(stats) {
                let base = metric(b);
                let ratio = if base == 0.0 { 1.0 } else { metric(r) / base };
                out.push_str(&format!(",{ratio:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// The whole matrix as one JSON document (what `all --stats-out`
    /// writes): every cell's full [`RunStats`] through
    /// [`gtr_core::export::run_stats_to_json`], grouped baseline-first
    /// the way the struct holds them. `validate_stats` checks this
    /// shape in CI.
    pub fn to_json(&self) -> gtr_sim::json::Json {
        use gtr_core::export::{run_stats_schema_version, run_stats_to_json};
        use gtr_sim::json::Json;
        // The header mirrors the cells' conditional stamp: v5 only
        // when some cell is tenanted, so untenanted matrix documents
        // stay byte-identical to their pre-tenancy form.
        let version = self
            .baseline
            .iter()
            .chain(self.variants.iter().flat_map(|(_, runs)| runs))
            .map(run_stats_schema_version)
            .max()
            .unwrap_or(gtr_core::export::STATS_SCHEMA_VERSION_UNTENANTED);
        Json::Obj(vec![
            ("schema_version".into(), Json::from(version)),
            ("kind".into(), Json::from("matrix")),
            (
                "apps".into(),
                Json::Arr(self.apps.iter().map(|a| Json::from(a.as_str())).collect()),
            ),
            (
                "baseline".into(),
                Json::Arr(self.baseline.iter().map(run_stats_to_json).collect()),
            ),
            (
                "variants".into(),
                Json::Arr(
                    self.variants
                        .iter()
                        .map(|(label, runs)| {
                            Json::Obj(vec![
                                ("label".into(), Json::from(label.as_str())),
                                (
                                    "runs".into(),
                                    Json::Arr(runs.iter().map(run_stats_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders an ASCII bar chart of per-variant geomean improvements
    /// (one glyph per 5%), appended below tables by the binaries.
    pub fn geomean_chart(&self) -> String {
        let mut out = String::new();
        for v in 0..self.variants.len() {
            let g = self.geomean_improvement(v);
            let bars = ((g / 5.0).round().max(0.0) as usize).min(60);
            out.push_str(&format!(
                "{:<26} {:+7.1}% |{}
",
                self.variants[v].0,
                g,
                "#".repeat(bars)
            ));
        }
        out
    }
}

/// Formats one fixed-width table row.
pub fn row(label: &str, cells: &[&str], last: &str) -> String {
    let mut s = format!("{label:<26}");
    for c in cells {
        s.push_str(&format!("{c:>9}"));
    }
    s.push_str(&format!("{last:>10}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_apps() -> Vec<AppTrace> {
        vec![
            suite::by_name("SRAD", Scale::tiny()).unwrap(),
            suite::by_name("GUPS", Scale::tiny()).unwrap(),
        ]
    }

    #[test]
    fn matrix_shape() {
        let m = Matrix::run_apps(
            &tiny_apps(),
            Variant::new("baseline", ReachConfig::baseline()),
            vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        );
        assert_eq!(m.apps.len(), 2);
        assert_eq!(m.baseline.len(), 2);
        assert_eq!(m.variants.len(), 1);
        assert_eq!(m.variants[0].1.len(), 2);
    }

    #[test]
    fn improvement_table_renders() {
        let m = Matrix::run_apps(
            &tiny_apps(),
            Variant::new("baseline", ReachConfig::baseline()),
            vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        );
        let t = m.improvement_table("demo");
        assert!(t.contains("GeoMean"));
        assert!(t.contains("IC+LDS"));
        assert!(t.contains("SRAD"));
    }

    #[test]
    fn parallel_matrix_matches_sequential_runs() {
        let apps = tiny_apps();
        let m = Matrix::run_apps(
            &apps,
            Variant::new("baseline", ReachConfig::baseline()),
            vec![],
        );
        let direct = run_one(&apps[0], GpuConfig::default(), ReachConfig::baseline());
        assert_eq!(m.baseline[0].total_cycles, direct.total_cycles);
    }

    #[test]
    fn csv_round_trips_shape() {
        let m = Matrix::run_apps(
            &tiny_apps(),
            Variant::new("baseline", ReachConfig::baseline()),
            vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        );
        let csv = m.improvement_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2, "header + one variant");
        assert!(lines[0].starts_with("config,"));
        assert_eq!(lines[1].split(',').count(), 2 + m.apps.len());
        let ncsv = m.normalized_csv(|s| s.page_walks as f64);
        assert_eq!(ncsv.trim().lines().count(), 2);
    }

    #[test]
    fn geomean_chart_renders_bars() {
        let m = Matrix::run_apps(
            &tiny_apps(),
            Variant::new("baseline", ReachConfig::baseline()),
            vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        );
        let chart = m.geomean_chart();
        assert!(chart.contains("IC+LDS"));
        assert!(chart.contains('|'));
    }

    /// Every statistic that feeds a figure, reduced to a comparable
    /// tuple per cell.
    fn fingerprint(m: &Matrix) -> Vec<(String, u64, u64, u64, u64, u64, u64, u64, u64, u64)> {
        let cell = |label: &str, s: &RunStats| {
            (
                format!("{label}/{}", s.app),
                s.total_cycles,
                s.instructions,
                s.translation_requests,
                s.l1_tlb.hits,
                s.l2_tlb.misses,
                s.page_walks,
                s.pte_accesses,
                s.dram_accesses,
                s.peak_tx_entries as u64,
            )
        };
        let mut out: Vec<_> = m.baseline.iter().map(|s| cell("baseline", s)).collect();
        for (label, stats) in &m.variants {
            out.extend(stats.iter().map(|s| cell(label, s)));
        }
        out
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let apps = tiny_apps();
        let run = |workers| {
            Matrix::run_apps_with_threads(
                &apps,
                Variant::new("baseline", ReachConfig::baseline()),
                vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
                workers,
            )
        };
        let one = fingerprint(&run(1));
        for workers in [2, 8] {
            assert_eq!(one, fingerprint(&run(workers)), "workers={workers} diverged");
        }
    }

    #[test]
    fn tenanted_matrix_is_worker_count_invariant() {
        // The tenancy model's determinism claim (TENANCY.md §5): a
        // multi-tenant cell — including its per-tenant attribution —
        // is a pure function of its (app, variant) inputs, so the
        // matrix fingerprint and every tenant record are identical
        // for any worker count.
        use gtr_vm::tenancy::SharingPolicy;
        let apps =
            vec![AppTrace::replicate(&suite::by_name("GUPS", Scale::tiny()).unwrap(), 2)];
        let run = |workers| {
            Matrix::run_apps_with_threads(
                &apps,
                Variant::new(
                    "baseline-2t",
                    ReachConfig::baseline().with_tenancy(2, SharingPolicy::SubEntry),
                ),
                vec![Variant::new(
                    "IC+LDS-2t",
                    ReachConfig::ic_plus_lds().with_tenancy(2, SharingPolicy::SubEntry),
                )],
                workers,
            )
        };
        let one = run(1);
        assert_eq!(one.baseline[0].tenants.len(), 2, "tenanted cells carry tenant records");
        for workers in [2, 8] {
            let many = run(workers);
            assert_eq!(fingerprint(&one), fingerprint(&many), "workers={workers} diverged");
            assert_eq!(
                one.baseline[0].tenants, many.baseline[0].tenants,
                "per-tenant attribution diverged at workers={workers}"
            );
            assert_eq!(one.variants[0].1[0].tenants, many.variants[0].1[0].tenants);
        }
    }

    #[test]
    fn fill_solo_cycles_enables_slowdown() {
        use gtr_vm::tenancy::SharingPolicy;
        let app = suite::by_name("GUPS", Scale::tiny()).unwrap();
        let solo = run_one(&app, GpuConfig::default(), ReachConfig::baseline());
        let mut shared = run_one(
            &AppTrace::replicate(&app, 2),
            GpuConfig::default(),
            ReachConfig::baseline().with_tenancy(2, SharingPolicy::Shared),
        );
        assert!(shared.tenants.iter().all(|t| t.slowdown() == 0.0), "no solo basis yet");
        fill_solo_cycles(&mut shared, &solo);
        let basis: u64 = solo.kernels.iter().map(|k| k.cycles).sum();
        for t in &shared.tenants {
            assert_eq!(t.solo_cycles, basis);
            assert!(t.slowdown() > 0.0, "tenant {} has a slowdown now", t.vmid);
        }
    }

    #[test]
    fn ducati_variant_runs() {
        let apps = vec![suite::by_name("SRAD", Scale::tiny()).unwrap()];
        let m = Matrix::run_apps(
            &apps,
            Variant::new("baseline", ReachConfig::baseline()),
            vec![Variant::new("ducati", ReachConfig::baseline()).with_ducati(1 << 18)],
        );
        assert!(m.variants[0].1[0].total_cycles > 0);
    }

    #[test]
    fn sampled_matrix_is_deterministic_and_caches_checkpoints() {
        let apps = tiny_apps();
        let dir = std::env::temp_dir().join(format!("gtr_ckpt_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mode = RunMode::sampled(SamplingConfig::new(2_000, 1_000, 3_000))
            .with_checkpoint_dir(&dir);
        let run = |workers| {
            Matrix::run_apps_with_mode(
                &apps,
                Variant::new("baseline", ReachConfig::baseline()),
                vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
                &mode,
                workers,
            )
        };
        let one = fingerprint(&run(1));
        // Second run hits the disk cache; 4 workers exercise stealing.
        assert_eq!(one, fingerprint(&run(4)), "sampled matrix diverged across workers/cache");
        // Both variants share one GPU config, so the cache holds one
        // checkpoint per app — not per cell.
        let cached = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(cached, apps.len(), "one checkpoint per (app, distinct gpu)");
        let m = run(2);
        for s in m.baseline.iter().chain(m.variants.iter().flat_map(|(_, v)| v)) {
            let meta = s.sampling.as_ref().expect("sampled cells carry sampling metadata");
            assert!(meta.checkpoint_restored, "warmup must come from the shared checkpoint");
            assert_eq!(meta.warmup_insts, 0, "checkpoint restore elides the warmup window");
            assert!(gtr_core::export::check_sampling_invariants(s).is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_capture_and_restore_are_deterministic() {
        // Two independent captures are identical, the serialized form
        // round-trips, and a run restored from the round-tripped
        // checkpoint is bit-identical to one restored from the
        // original — the properties the disk cache relies on.
        let app = suite::by_name("GUPS", Scale::tiny()).unwrap();
        let cfg = SamplingConfig::new(512, 512, 1_024);
        let ck = Checkpoint::capture(&app, &GpuConfig::default(), cfg.warmup);
        assert_eq!(ck, Checkpoint::capture(&app, &GpuConfig::default(), cfg.warmup));
        assert!(!ck.stream.is_empty(), "warmup must record translations");
        let from_disk = Checkpoint::from_bytes(&ck.to_bytes()).expect("round trip");
        let v = Variant::new("IC+LDS", ReachConfig::ic_plus_lds());
        let a = v.run_with_mode(&app, Some(cfg), Some(&ck));
        let b = v.run_with_mode(&app, Some(cfg), Some(&from_disk));
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.sampling, b.sampling);
    }

    #[test]
    fn sampled_geomeans_within_two_points_of_exact() {
        // The acceptance bound from the experiment plan: on the tiny
        // suite, per-variant geomean improvements under checkpointed
        // sampling stay within 2 percentage points of the exact run.
        // Tiny apps are 2.5k–15k instructions, so accuracy needs a
        // high detail duty cycle (1024 detailed per 256 skipped); the
        // paper-scale windows in `SamplingConfig::paper_default` keep
        // a 1:4 duty over runs that are orders of magnitude longer.
        let baseline = || Variant::new("baseline", ReachConfig::baseline());
        let variants = || {
            vec![
                Variant::new("LDS", ReachConfig::lds_only()),
                Variant::new("IC", ReachConfig::ic_only()),
                Variant::new("IC+LDS", ReachConfig::ic_plus_lds()),
            ]
        };
        let exact = Matrix::run(Scale::tiny(), baseline(), variants());
        let mode = RunMode::sampled(SamplingConfig::new(256, 1_024, 256));
        let sampled = Matrix::run_with_mode(Scale::tiny(), baseline(), variants(), &mode);
        for v in 0..exact.variants.len() {
            let e = exact.geomean_improvement(v);
            let s = sampled.geomean_improvement(v);
            assert!(
                (e - s).abs() <= 2.0,
                "variant {} geomean drifted: exact {e:.2}% vs sampled {s:.2}%",
                exact.variants[v].0,
            );
        }
    }
}
