//! Warmup checkpoints: capture-once, restore-many warm simulation
//! state for the `apps × variants` experiment matrix.
//!
//! A paper-scale matrix re-simulates an identical warmup phase from
//! cold state in every cell. A [`Checkpoint`] removes that redundancy:
//! it is produced **once per [`CheckpointKey`]** by running the app's
//! warmup window in pure functional-warming mode on the baseline
//! [`ReachConfig`](crate::config::ReachConfig) and recording the
//! translation request stream (CU, key, resolved PPN). Because the
//! request stream that reaches the translation path is purely
//! functional — independent of the reach configuration and of every
//! timing-side machine knob, which only change *where* lookups hit and
//! how long they take — the same stream replays into **any** variant's
//! own hierarchy via
//! [`System::restore_checkpoint`](crate::system::System::restore_checkpoint):
//! the variant's L1 TLBs, victim LDS/I-cache structures, L2 TLB, IOMMU
//! TLBs and page-walk caches all warm through their own fill flow, and
//! the page tables re-map frames in first-touch order (the
//! deterministic frame allocator reproduces identical PPNs).
//!
//! The capture's identity is a [`CheckpointKey`]: the app, the warmup
//! window, and a fingerprint over **exactly** the GPU fields that
//! shape the stream (see [`stream_fingerprint`]). One capture per key
//! therefore serves an entire timing-side sweep axis — every L2-TLB
//! size of Figs 2–3, the perfect-TLB upper bound, every I-cache
//! sharer count of Fig 16a — while a page-size change produces a new
//! key (it changes the VPNs themselves).
//!
//! The bench harness `Arc`-shares one checkpoint across every matrix
//! cell its key covers and optionally caches the serialized form on
//! disk ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`], built
//! on [`gtr_sim::arena`]).

use gtr_gpu::config::GpuConfig;
use gtr_gpu::kernel::AppTrace;
use gtr_sim::arena::{ArenaReader, ArenaWriter};
use gtr_vm::addr::{Ppn, TranslationKey, VmId, Vpn, VrfId};

use crate::config::ReachConfig;
use crate::system::System;

/// Serialization magic (`GTRC`) + format version. Version 2 replaced
/// the whole-`GpuConfig` fingerprint with the stream fingerprint of
/// [`CheckpointKey`]; version-1 files fail [`Checkpoint::from_bytes`]
/// and are silently re-captured by the cache layer.
const MAGIC: u32 = 0x4754_5243;
const VERSION: u32 = 2;

/// One recorded translation request: which CU asked for which page,
/// and which frame the deterministic allocator gave it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Requesting CU index.
    pub cu: u32,
    /// The translation key (VPN + address-space + VRF ids).
    pub key: TranslationKey,
    /// The physical frame the capture run resolved the key to.
    pub ppn: Ppn,
}

/// The identity of a capture: which `(app, functional machine shape,
/// warmup window)` produced its translation stream. Two
/// configurations with equal keys capture bit-identical streams, so
/// the harness shares one [`Checkpoint`] across them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckpointKey {
    /// Application name the stream is captured from.
    pub app: String,
    /// The capture window, in executed wavefront instructions.
    pub warmup_insts: u64,
    /// [`stream_fingerprint`] of the GPU configuration.
    pub stream_fingerprint: u64,
}

impl CheckpointKey {
    /// The key a capture of `app` on `gpu` over `warmup_insts`
    /// instructions would carry.
    pub fn new(app: &str, gpu: &GpuConfig, warmup_insts: u64) -> Self {
        Self {
            app: app.to_string(),
            warmup_insts,
            stream_fingerprint: stream_fingerprint(gpu),
        }
    }
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash of a string.
pub fn fingerprint_str(s: &str) -> u64 {
    fingerprint_bytes(s.as_bytes())
}

/// Fingerprint of exactly the [`GpuConfig`] fields that shape the
/// captured translation stream. Captures run in pure functional
/// warming (every op issues at zero modeled latency, ports and DRAM
/// are never consulted), so the stream is determined by the
/// *functional front end* alone:
///
/// * `page_size` — sets the VPN of every access (a change rewrites
///   the stream itself, so it **must** invalidate);
/// * `coalescing` — whether duplicate per-lane pages merge into one
///   request;
/// * `cus` — workgroup placement round-robins over CUs and each
///   stream entry records its requesting CU;
/// * `waves_per_cu()` (= `simds_per_cu × waves_per_simd`) — the wave
///   slots that gate how many workgroups dispatch concurrently;
/// * `lds_bytes` — the LDS allocator capacity that gates workgroup
///   dispatch for LDS-hungry kernels;
/// * `page_layout` — the frame-allocation policy (and its
///   fragmentation seed/threshold) decides every PPN the walker
///   returns, and the stream records resolved PPNs.
///
/// Everything else is timing-side and deliberately excluded: TLB
/// geometries and latencies (`l1_tlb`, `l2_tlb`, `l2_tlb_perfect`),
/// the I-cache hierarchy (`icache_bytes`, `icache_assoc`,
/// `cus_per_icache`, `ic_tag_latency` — code fetches are physical and
/// never enter the translation stream), data caches and DRAM (`l1d`,
/// `memory`), the IOMMU, LDS latency, and the unused `simd_width`.
/// Sweeping any of them reuses the same capture — the payoff that
/// lets one checkpoint serve the whole Figs 2–3 axis. The reach
/// configuration never enters the key because captures always run on
/// [`ReachConfig::baseline`].
pub fn stream_fingerprint(gpu: &GpuConfig) -> u64 {
    fingerprint_str(&format!(
        "page_size={:?} coalescing={} cus={} waves_per_cu={} lds_bytes={} page_layout={:?}",
        gpu.page_size,
        gpu.coalescing,
        gpu.cus,
        gpu.waves_per_cu(),
        gpu.lds_bytes,
        gpu.page_layout,
    ))
}

/// A warm-state snapshot: the translation stream of one app's warmup
/// window on one functional machine shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The capture's identity (restores must match).
    pub key: CheckpointKey,
    /// The recorded translation stream, in request order.
    pub stream: Vec<CheckpointEntry>,
}

impl Checkpoint {
    /// Captures a checkpoint: runs the first `warmup_insts`
    /// instructions of `app` on `gpu` with the baseline reach
    /// configuration in pure functional-warming mode and records the
    /// translation stream. Costs functional (not detailed) simulation
    /// time, once per [`CheckpointKey`].
    pub fn capture(app: &AppTrace, gpu: &GpuConfig, warmup_insts: u64) -> Self {
        let _span = gtr_sim::prof::span_with("ckpt:capture", || app.name().to_string());
        let mut sys = System::new(gpu.clone(), ReachConfig::baseline());
        let stream = sys.run_functional_capture(app, warmup_insts);
        Self {
            key: CheckpointKey::new(app.name(), gpu, warmup_insts),
            stream,
        }
    }

    /// The application the stream was captured from.
    pub fn app(&self) -> &str {
        &self.key.app
    }

    /// The capture window, in executed wavefront instructions.
    pub fn warmup_insts(&self) -> u64 {
        self.key.warmup_insts
    }

    /// Serializes into the arena wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArenaWriter::with_capacity(32 + self.key.app.len() + self.stream.len() * 22);
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w.put_str(&self.key.app);
        w.put_u64(self.key.stream_fingerprint);
        w.put_u64(self.key.warmup_insts);
        w.put_u64(self.stream.len() as u64);
        for e in &self.stream {
            w.put_u32(e.cu);
            w.put_u64(e.key.vpn.0);
            w.put_u8(e.key.vmid.raw());
            w.put_u8(e.key.vrf.raw());
            w.put_u64(e.ppn.0);
        }
        // Trailing integrity checksum over everything before it: a
        // single flipped bit anywhere in the payload must fail the
        // load (a silently-decoded wrong PPN would poison every run
        // warmed from this file), so the cache layer re-captures.
        let mut bytes = w.into_bytes();
        let sum = fingerprint_bytes(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    /// Deserializes; `None` on wrong magic/version, truncation,
    /// trailing bytes, or a checksum mismatch (bit rot).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let _span = gtr_sim::prof::span("ckpt:decode");
        let (payload, sum_bytes) = bytes.split_at_checked(bytes.len().checked_sub(8)?)?;
        {
            let _sum = gtr_sim::prof::span("ckpt:checksum");
            if u64::from_le_bytes(sum_bytes.try_into().ok()?) != fingerprint_bytes(payload) {
                return None;
            }
        }
        let mut r = ArenaReader::new(payload);
        if r.get_u32()? != MAGIC || r.get_u32()? != VERSION {
            return None;
        }
        let app = r.get_str()?.to_string();
        let stream_fingerprint = r.get_u64()?;
        let warmup_insts = r.get_u64()?;
        let n = r.get_u64()? as usize;
        let mut stream = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            let cu = r.get_u32()?;
            let vpn = Vpn(r.get_u64()?);
            let vmid = VmId::new(r.get_u8()?);
            let vrf = VrfId::new(r.get_u8()?);
            let ppn = Ppn(r.get_u64()?);
            stream.push(CheckpointEntry { cu, key: TranslationKey { vpn, vmid, vrf }, ppn });
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(Self {
            key: CheckpointKey { app, warmup_insts, stream_fingerprint },
            stream,
        })
    }

    /// Whether this checkpoint was captured for `app` with the given
    /// window on a machine whose stream matches `gpu`'s — the
    /// disk-cache validity test.
    pub fn matches(&self, app: &str, gpu: &GpuConfig, warmup_insts: u64) -> bool {
        self.key == CheckpointKey::new(app, gpu, warmup_insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_vm::addr::PageSize;

    fn sample() -> Checkpoint {
        Checkpoint {
            key: CheckpointKey {
                app: "GUPS".to_string(),
                warmup_insts: 30_000,
                stream_fingerprint: 0xABCD_EF01_2345_6789,
            },
            stream: (0..100u64)
                .map(|i| CheckpointEntry {
                    cu: (i % 8) as u32,
                    key: TranslationKey {
                        vpn: Vpn(i * 37),
                        vmid: VmId::new((i % 4) as u8),
                        vrf: VrfId::default(),
                    },
                    ppn: Ppn(1000 + i),
                })
                .collect(),
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(ck, back);
    }

    #[test]
    fn corrupted_or_truncated_bytes_rejected() {
        let ck = sample();
        let bytes = ck.to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&wrong_magic).is_none());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Checkpoint::from_bytes(&trailing).is_none());
    }

    #[test]
    fn timing_side_sweeps_share_a_fingerprint() {
        let base = stream_fingerprint(&GpuConfig::default());
        // Every axis of the timing-side sweeps maps to the same key.
        for gpu in [
            GpuConfig::default().with_l2_tlb_entries(2048),
            GpuConfig::default().with_l2_tlb_entries(65536),
            GpuConfig::default().with_perfect_l2_tlb(),
            GpuConfig::default().with_icache_sharers(1),
            GpuConfig::default().with_icache_sharers(8),
            GpuConfig::default().without_page_walk_caches(),
        ] {
            assert_eq!(base, stream_fingerprint(&gpu), "timing-side field leaked into the key");
        }
    }

    #[test]
    fn stream_shaping_fields_change_the_fingerprint() {
        let base = stream_fingerprint(&GpuConfig::default());
        for (label, gpu) in [
            ("page_size", GpuConfig::default().with_page_size(PageSize::Size64K)),
            ("coalescing", GpuConfig::default().without_coalescing()),
            ("cus", GpuConfig {
                cus: 4,
                ..GpuConfig::default()
            }),
            ("waves_per_simd", GpuConfig {
                waves_per_simd: 4,
                ..GpuConfig::default()
            }),
            ("lds_bytes", GpuConfig {
                lds_bytes: 32 * 1024,
                ..GpuConfig::default()
            }),
        ] {
            assert_ne!(base, stream_fingerprint(&gpu), "{label} must invalidate captures");
        }
        let ck = sample();
        assert!(!ck.matches("GUPS", &GpuConfig::default(), 30_000), "fingerprint must match");
    }
}
