//! Regenerates Figure 16 (sharers, wire latency, DUCATI) and the
//! §6.3.1 segment-size ablation.
fn main() {
    let scale = scale_from_args();
    println!("{}", gtr_bench::figures::fig16a(scale));
    println!("{}", gtr_bench::figures::fig16b(scale));
    println!("{}", gtr_bench::figures::fig16c(scale));
    println!("{}", gtr_bench::figures::ablation_segment_size(scale));
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
