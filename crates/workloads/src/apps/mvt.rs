//! MVT (Polybench): `x1 += A·y1; x2 += Aᵀ·y2`.
//!
//! Two kernels, never back-to-back. The matrix dimension is
//! deliberately non-power-of-two (2304), so column sweeps shift
//! page-alignment as they advance — MVT gains substantially from
//! added reach but less than ATAX/BICG (Fig 13b).

use gtr_gpu::kernel::AppTrace;

use crate::gen::{column_sweep_kernel, row_stream_kernel};
use crate::scale::Scale;

/// Matrix dimension: 1250 × 1250 × 4 B ≈ 1526 pages ≈ exactly the
/// per-CU LDS reach: MVT is captured by every scheme and gains
/// substantially, though less than ATAX/BICG (Fig 13b's ordering).
pub const N: u64 = 1250;

/// VA base of the matrix.
pub const MATRIX_BASE: u64 = 0x1_0000_0000;

/// VA base of the y1/y2/x1/x2 vectors.
pub const VECTOR_BASE: u64 = MATRIX_BASE + 0xD0_0000;

/// Builds the MVT trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = N * 4;
    let waves = 32;
    let k1 = row_stream_kernel(
        "mvt_kernel1",
        56,
        MATRIX_BASE,
        VECTOR_BASE,
        waves,
        4,
        scale.count(56),
        8,
    );
    let k2 = column_sweep_kernel(
        "mvt_kernel2",
        88,
        MATRIX_BASE,
        row_bytes,
        N,
        waves,
        4,
        scale.count(12),
        8,
    );
    AppTrace::new("MVT", vec![k1, k2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 2);
        assert!(!app.has_back_to_back_kernels());
        assert_eq!(app.distinct_kernels(), 2);
    }

    #[test]
    fn non_power_of_two_rows() {
        assert!(!N.is_multiple_of(1024), "rows stay misaligned with page boundaries");
    }

    #[test]
    fn deterministic() {
        assert_eq!(build(Scale::quick()), build(Scale::quick()));
    }
}
