//! Contention models: multi-unit servers, tracked ports, pipelines.
//!
//! These are the building blocks of the resource-reservation timing
//! model. A request never "occupies" a component via callbacks;
//! instead the component records when each of its internal units next
//! becomes free and answers scheduling queries in amortized
//! `O(log units)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::stats::Sampler;
use crate::Cycle;

/// A component with `units` identical service units and an implicit
/// unbounded FIFO queue (e.g. a pool of page-table walkers, DMA
/// engines, or TLB ports).
///
/// # Example
///
/// ```
/// use gtr_sim::resource::Server;
/// let mut walkers = Server::new(32);
/// let done = walkers.acquire(1_000, 500);
/// assert_eq!(done, 1_500);
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    free_at: BinaryHeap<Reverse<Cycle>>,
    units: usize,
    busy_cycles: u64,
    requests: u64,
}

impl Server {
    /// Creates a server with `units` parallel service units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "a server needs at least one unit");
        let mut free_at = BinaryHeap::with_capacity(units);
        for _ in 0..units {
            free_at.push(Reverse(0));
        }
        Self { free_at, units, busy_cycles: 0, requests: 0 }
    }

    /// Reserves one unit for `service` cycles for a request arriving at
    /// `now`; returns the completion cycle (`start + service` where
    /// `start = max(now, earliest unit free time)`).
    pub fn acquire(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let Reverse(free) = self.free_at.pop().expect("server always has units");
        let start = now.max(free);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy_cycles += service;
        self.requests += 1;
        done
    }

    /// Earliest cycle at which some unit is free.
    pub fn earliest_free(&self) -> Cycle {
        self.free_at.peek().map(|Reverse(c)| *c).unwrap_or(0)
    }

    /// Number of parallel units.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Total busy cycles accumulated across all units.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Resets unit availability and counters (used at kernel
    /// boundaries when components are drained).
    pub fn reset(&mut self) {
        self.free_at.clear();
        for _ in 0..self.units {
            self.free_at.push(Reverse(0));
        }
        self.busy_cycles = 0;
        self.requests = 0;
    }
}

/// A single port that additionally records the distribution of idle
/// gaps between consecutive accesses — exactly the measurement behind
/// Figures 4b and 5b of the paper ("idle cycles at each LDS/I-cache
/// port").
///
/// Reservations are gap-filling ([`Timeline`]): a request arriving
/// slightly later in processing order but earlier in simulated time
/// slots into idle cycles instead of queueing behind a future
/// reservation.
#[derive(Debug, Clone)]
pub struct TrackedPort {
    timeline: Timeline,
    busy_end: Cycle,
    any_access: bool,
    idle_gaps: Sampler,
    accesses: u64,
}

impl TrackedPort {
    /// Creates an idle port.
    pub fn new() -> Self {
        Self {
            timeline: Timeline::new(),
            busy_end: 0,
            any_access: false,
            idle_gaps: Sampler::new(),
            accesses: 0,
        }
    }

    /// Accesses the port at `now` for `service` cycles, returning the
    /// completion cycle and recording the idle gap since the previous
    /// access.
    pub fn access(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let start = self.timeline.reserve(now, service);
        if self.any_access {
            self.idle_gaps.record(start.saturating_sub(self.busy_end) as f64);
        }
        self.any_access = true;
        self.busy_end = self.busy_end.max(start + service);
        self.accesses += 1;
        start + service
    }

    /// Distribution of idle gaps observed between consecutive accesses.
    pub fn idle_gaps(&self) -> &Sampler {
        &self.idle_gaps
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Latest end of any reservation made so far.
    pub fn free_at(&self) -> Cycle {
        self.busy_end
    }
}

impl Default for TrackedPort {
    fn default() -> Self {
        Self::new()
    }
}

/// A fully pipelined unit: a new request may start every
/// `initiation_interval` cycles and completes `latency` cycles after it
/// starts (e.g. a SIMD issue slot: one 64-wide wave instruction issues
/// over 4 cycles on a 16-lane SIMD).
#[derive(Debug, Clone)]
pub struct Pipeline {
    next_issue: Cycle,
    initiation_interval: Cycle,
    latency: Cycle,
    issued: u64,
}

impl Pipeline {
    /// Creates a pipeline with the given initiation interval and
    /// start-to-finish latency.
    pub fn new(initiation_interval: Cycle, latency: Cycle) -> Self {
        Self { next_issue: 0, initiation_interval, latency, issued: 0 }
    }

    /// Issues a request arriving at `now`; returns its completion time.
    pub fn issue(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_issue);
        self.next_issue = start + self.initiation_interval;
        self.issued += 1;
        start + self.latency
    }

    /// Total requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Start-to-finish latency of one request.
    pub fn latency(&self) -> Cycle {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_single_unit_serializes() {
        let mut s = Server::new(1);
        assert_eq!(s.acquire(0, 10), 10);
        assert_eq!(s.acquire(0, 10), 20);
        assert_eq!(s.acquire(100, 10), 110);
        assert_eq!(s.requests(), 3);
        assert_eq!(s.busy_cycles(), 30);
    }

    #[test]
    fn server_multi_unit_parallelism() {
        let mut s = Server::new(3);
        assert_eq!(s.acquire(0, 50), 50);
        assert_eq!(s.acquire(0, 50), 50);
        assert_eq!(s.acquire(0, 50), 50);
        // fourth request queues behind whichever unit frees first
        assert_eq!(s.acquire(0, 50), 100);
    }

    #[test]
    fn server_idle_gap_no_penalty() {
        let mut s = Server::new(1);
        s.acquire(0, 10);
        // long idle period; arrival dominates
        assert_eq!(s.acquire(1_000, 5), 1_005);
    }

    #[test]
    fn server_reset_restores_availability() {
        let mut s = Server::new(2);
        s.acquire(0, 1_000);
        s.reset();
        assert_eq!(s.acquire(0, 1), 1);
        assert_eq!(s.requests(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn server_zero_units_panics() {
        let _ = Server::new(0);
    }

    #[test]
    fn tracked_port_records_idle_gaps() {
        let mut p = TrackedPort::new();
        p.access(0, 4); // busy [0,4)
        p.access(20, 4); // idle gap 20-4 = 16
        p.access(24, 4); // back-to-back: gap 0
        let s = p.idle_gaps();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 16.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(p.accesses(), 3);
    }

    #[test]
    fn tracked_port_busy_pushback() {
        let mut p = TrackedPort::new();
        assert_eq!(p.access(0, 10), 10);
        // arrives while busy: starts at 10
        assert_eq!(p.access(5, 10), 20);
    }

    #[test]
    fn pipeline_initiation_interval() {
        let mut pl = Pipeline::new(4, 40);
        assert_eq!(pl.issue(0), 40);
        assert_eq!(pl.issue(0), 44); // starts at 4
        assert_eq!(pl.issue(100), 140);
        assert_eq!(pl.issued(), 3);
    }
}

/// A gap-filling busy-interval timeline for one service unit.
///
/// Unlike [`Server`], whose units only track "next free time" and
/// therefore let a reservation made *for the far future* block
/// requests that arrive later in processing order but earlier in
/// simulated time, `Timeline` keeps the set of future busy intervals
/// and places each request in the earliest gap at or after its arrival
/// — so out-of-time-order reservations (e.g. page-walker PTE reads
/// scheduled at a queued walker's future start time) cannot starve
/// earlier traffic.
///
/// Intervals that end more than [`Timeline::PRUNE_MARGIN`] before the
/// latest arrival are dropped from the front (amortized O(1));
/// arrival-time skew in this workspace is far below that margin.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Sorted, disjoint busy intervals `(start, end)`.
    busy: std::collections::VecDeque<(Cycle, Cycle)>,
    max_arrival: Cycle,
}

impl Timeline {
    /// How far behind the newest arrival an interval may end before it
    /// is pruned.
    pub const PRUNE_MARGIN: Cycle = 1_000_000;

    /// Creates an idle timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `service` cycles at the earliest gap at or after `at`;
    /// returns the start cycle of the reservation.
    pub fn reserve(&mut self, at: Cycle, service: Cycle) -> Cycle {
        self.max_arrival = self.max_arrival.max(at);
        let horizon = self.max_arrival.saturating_sub(Self::PRUNE_MARGIN);
        while let Some(&(_, e)) = self.busy.front() {
            if e <= horizon {
                self.busy.pop_front();
            } else {
                break;
            }
        }
        if service == 0 {
            return at;
        }
        // First interval that could interact with an arrival at `at`.
        let mut i = self.busy.partition_point(|&(_, e)| e <= at);
        let mut cursor = at;
        while i < self.busy.len() {
            let (s, e) = self.busy[i];
            if s >= cursor + service {
                break;
            }
            cursor = cursor.max(e);
            i += 1;
        }
        let start = cursor;
        let end = start + service;
        // Merge with neighbors where contiguous.
        let merge_prev = i > 0 && self.busy[i - 1].1 == start;
        let merge_next = i < self.busy.len() && self.busy[i].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                self.busy[i - 1].1 = self.busy[i].1;
                self.busy.remove(i);
            }
            (true, false) => self.busy[i - 1].1 = end,
            (false, true) => self.busy[i].0 = start,
            (false, false) => self.busy.insert(i, (start, end)),
        }
        start
    }

    /// Number of tracked future intervals (diagnostics).
    pub fn interval_count(&self) -> usize {
        self.busy.len()
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_merge() {
        let mut t = Timeline::new();
        assert_eq!(t.reserve(0, 10), 0);
        assert_eq!(t.reserve(0, 10), 10);
        assert_eq!(t.reserve(0, 10), 20);
        assert_eq!(t.interval_count(), 1);
    }

    #[test]
    fn earlier_request_fills_gap_before_future_reservation() {
        let mut t = Timeline::new();
        // A far-future reservation (e.g. a queued page walker).
        assert_eq!(t.reserve(100_000, 50), 100_000);
        // An earlier request must not wait behind it.
        assert_eq!(t.reserve(10, 50), 10);
        assert_eq!(t.interval_count(), 2);
    }

    #[test]
    fn gap_too_small_skips_to_next() {
        let mut t = Timeline::new();
        t.reserve(0, 10); // [0,10)
        t.reserve(15, 10); // [15,25)
        // Gap [10,15) is too small for 10 cycles: lands at 25.
        assert_eq!(t.reserve(0, 10), 25);
    }

    #[test]
    fn exact_fit_in_gap() {
        let mut t = Timeline::new();
        t.reserve(0, 10); // [0,10)
        t.reserve(20, 10); // [20,30)
        assert_eq!(t.reserve(5, 10), 10); // fills [10,20) exactly
        assert_eq!(t.interval_count(), 1, "all three merged");
    }

    #[test]
    fn zero_service_is_free() {
        let mut t = Timeline::new();
        t.reserve(0, 100);
        assert_eq!(t.reserve(50, 0), 50);
    }

    #[test]
    fn pruning_bounds_interval_list() {
        let mut t = Timeline::new();
        for i in 0..100_000u64 {
            t.reserve(i * 200, 10);
        }
        assert!(t.interval_count() <= 5_001, "old intervals pruned");
    }

    #[test]
    fn overlapping_future_and_past_requests() {
        let mut t = Timeline::new();
        let far = t.reserve(50_000, 100);
        assert_eq!(far, 50_000);
        // Many earlier requests pack densely without touching it.
        let mut prev = 0;
        for _ in 0..10 {
            let s = t.reserve(0, 100);
            assert!(s >= prev);
            prev = s;
        }
        assert!(prev + 100 <= 50_000 || prev >= 50_100);
    }
}
