//! System-level property tests: random tiny traces through the full
//! simulator must be deterministic, conserve instruction counts, and
//! never let the reconfigurable design corrupt execution.

use proptest::prelude::*;

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::{AppTrace, KernelDesc, WaveProgram, WorkgroupDesc};
use gpu_translation_reach::gpu::ops::Op;

/// Strategy: a random op (bounded footprint so traces stay tiny).
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8).prop_map(Op::compute),
        (0u64..512, 1u64..5000, any::<bool>()).prop_map(|(page, stride, write)| {
            let base = 0x1_0000_0000 + page * 4096;
            if write {
                Op::global_write_strided(base, stride, 64)
            } else {
                Op::global_read_strided(base, stride, 64)
            }
        }),
        (0u32..2048, any::<bool>()).prop_map(|(off, w)| if w {
            Op::lds_write(off)
        } else {
            Op::lds_read(off)
        }),
    ]
}

/// Strategy: an app of 1-3 kernels, 1-2 workgroups of 1-4 identical
/// waves (identical so barriers, if added later, stay safe).
fn arb_app() -> impl Strategy<Value = AppTrace> {
    prop::collection::vec(
        (
            prop::collection::vec(arb_op(), 1..24),
            1usize..3,
            1usize..5,
            1u32..64,
            prop_oneof![Just(0u32), Just(512u32), Just(4096u32)],
        ),
        1..4,
    )
    .prop_map(|kernels| {
        let ks = kernels
            .into_iter()
            .enumerate()
            .map(|(i, (ops, wgs, waves, code, lds))| {
                let wave = WaveProgram::new(ops);
                let wg = WorkgroupDesc::new(vec![wave; waves]);
                KernelDesc::new(format!("k{i}"), code, lds, vec![wg; wgs])
            })
            .collect();
        AppTrace::new("prop", ks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical inputs produce identical results, for every config.
    #[test]
    fn random_traces_are_deterministic(app in arb_app()) {
        for reach in [ReachConfig::baseline(), ReachConfig::ic_plus_lds()] {
            let a = System::new(GpuConfig::default(), reach).run(&app);
            let b = System::new(GpuConfig::default(), reach).run(&app);
            prop_assert_eq!(a.total_cycles, b.total_cycles);
            prop_assert_eq!(a.page_walks, b.page_walks);
            prop_assert_eq!(a.dram_accesses, b.dram_accesses);
        }
    }

    /// The reconfigurable design never changes *what* executes — only
    /// when: instruction counts and translation request counts match
    /// the baseline exactly.
    #[test]
    fn reach_is_execution_transparent(app in arb_app()) {
        let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
        let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
        prop_assert_eq!(base.instructions, app.total_ops());
        prop_assert_eq!(reach.instructions, base.instructions);
        prop_assert_eq!(reach.translation_requests, base.translation_requests);
    }

    /// Every translation request is accounted for by exactly one
    /// resolution path.
    #[test]
    fn translation_requests_conserved(app in arb_app()) {
        let s = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
        // L1 hits + L1 misses == requests (every request probes L1).
        prop_assert_eq!(s.l1_tlb.total(), s.translation_requests);
        // Walks can never exceed L1 misses.
        prop_assert!(s.page_walks <= s.l1_tlb.misses);
        // Victim hits can never exceed L1 misses either.
        prop_assert!(s.victim_hits() <= s.l1_tlb.misses);
    }
}
