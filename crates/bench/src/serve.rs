//! The `gtr-serve` sweep service: experiment cells as queries.
//!
//! Turns the batch harness inside out — instead of regenerating whole
//! figure matrices, clients submit individual experiment cells
//! `(app, config, scale, mode, tenancy, page mode)` over a
//! line-delimited JSONL protocol and get schema-v4/v5/v6 stats
//! documents streamed back. Three layers (ARCHITECTURE's serving
//! section):
//!
//! 1. **Admission/dedupe** — every request resolves to a
//!    [`CellKey`](gtr_core::cell::CellKey); completed cells are
//!    memoized in memory and in a versioned, checksummed on-disk
//!    result cache, and identical in-flight requests coalesce onto
//!    one computation ([`Flight`] condvars), so a hot cell is one
//!    cache probe — the simulator is never re-entered.
//! 2. **Execution** — cold cells batch onto the existing
//!    work-stealing [`pool`](crate::pool) with warmup checkpoints
//!    shared through the acquire/return [`CheckpointShards`] tracker.
//!    Every cell is an independent deterministic simulation, so a
//!    served document is byte-identical to the same cell exported by
//!    `all`/`run_app` in batch mode.
//! 3. **Streaming** — responses stream back per cell: a small header
//!    line (`cell`, `source`, `schema_version`, `micros`) followed by
//!    the stats document, exactly as
//!    [`run_stats_to_json_string`](gtr_core::export::run_stats_to_json_string)
//!    renders it.
//!
//! # Protocol
//!
//! One JSON object per request line:
//!
//! ```text
//! {"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact"}
//! {"app":"ATAX","config":"baseline","scale":"tiny","mode":"sampled","tenants":2,"policy":"subentry"}
//! {"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact","page_mode":"coalesced"}
//! {"cmd":"stats"}      -> one {"counters":{...}} line
//! {"cmd":"shutdown"}   -> one {"ok":"shutdown"} line; the listener stops
//! ```
//!
//! Cell requests accumulate into a batch; a blank line or the
//! client's write-side EOF flushes it. Responses come back in request
//! order. Invalid requests produce one `{"error":...}` line (flushing
//! the batch collected so far, so ordering stays request-relative).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gtr_core::cell::CellKey;
use gtr_core::checkpoint::{fingerprint_bytes, Checkpoint, CheckpointKey};
use gtr_core::config::{ReachConfig, SamplingConfig};
use gtr_core::export::{run_stats_from_json, run_stats_schema_version, run_stats_to_json_string};
use gtr_core::stats::RunStats;
use gtr_gpu::config::GpuConfig;
use gtr_gpu::kernel::AppTrace;
use gtr_sim::arena::{ArenaReader, ArenaWriter};
use gtr_sim::json::Json;
use gtr_sim::prof;
use gtr_vm::tenancy::{SharingPolicy, MAX_TENANTS};
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

use crate::harness::{self, Variant};

/// Result-cache wire-format version. Bumping it orphans every cached
/// entry at once: [`decode_result`] rejects other versions and the
/// serve layer recomputes, exactly like the checkpoint cache's
/// version discipline.
pub const RESULT_CACHE_VERSION: u32 = 1;

/// Result-cache serialization magic (`GTRR`).
const RESULT_MAGIC: u32 = 0x4754_5252;

/// A memoized cell result: the streamed stats document plus its
/// stamped schema version (4 untenanted, 5 tenanted, 6 when the cell
/// ran with coalesced TLB entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Schema version the document carries.
    pub schema_version: u64,
    /// The full stats document, byte-identical to
    /// [`run_stats_to_json_string`] output (compact, one trailing
    /// newline).
    pub doc: String,
}

/// Serializes one result-cache entry in the arena wire format:
/// magic, `version`, the cell fingerprint, the schema version, the
/// document, and a trailing FNV-1a checksum over everything before
/// it. `version` is a parameter (rather than baked to
/// [`RESULT_CACHE_VERSION`]) so tests can fabricate stale-version
/// entries and prove the bump invalidates them.
pub fn encode_result(version: u32, cell_fingerprint: u64, result: &CachedResult) -> Vec<u8> {
    let mut w = ArenaWriter::with_capacity(40 + result.doc.len());
    w.put_u32(RESULT_MAGIC);
    w.put_u32(version);
    w.put_u64(cell_fingerprint);
    w.put_u64(result.schema_version);
    w.put_str(&result.doc);
    let mut bytes = w.into_bytes();
    let sum = fingerprint_bytes(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Deserializes a result-cache entry; `None` on checksum mismatch,
/// wrong magic or version, truncation, trailing bytes, or a
/// fingerprint that does not match `cell_fingerprint` (a renamed or
/// misfiled entry). Any `None` is treated as a cache miss — the cell
/// recomputes; a damaged file can never poison a response.
pub fn decode_result(bytes: &[u8], cell_fingerprint: u64) -> Option<CachedResult> {
    let (payload, sum_bytes) = bytes.split_at_checked(bytes.len().checked_sub(8)?)?;
    if u64::from_le_bytes(sum_bytes.try_into().ok()?) != fingerprint_bytes(payload) {
        return None;
    }
    let mut r = ArenaReader::new(payload);
    if r.get_u32()? != RESULT_MAGIC || r.get_u32()? != RESULT_CACHE_VERSION {
        return None;
    }
    if r.get_u64()? != cell_fingerprint {
        return None;
    }
    let schema_version = r.get_u64()?;
    let doc = r.get_str()?.to_string();
    if r.remaining() != 0 {
        return None;
    }
    Some(CachedResult { schema_version, doc })
}

/// The on-disk file a cell's result is cached in.
pub fn result_path(dir: &Path, cell_fingerprint: u64) -> PathBuf {
    dir.join(format!("cell_{cell_fingerprint:016x}.bin"))
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An experiment-cell query.
    Cell(CellRequest),
    /// `{"cmd":"stats"}` — report the admission counters.
    Stats,
    /// `{"cmd":"shutdown"}` — stop the listener after acknowledging.
    Shutdown,
}

/// An experiment-cell request as it arrives on the wire (unvalidated
/// strings; [`CellRequest::resolve`] turns it into a runnable cell).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRequest {
    /// Application name (Table-2 suite).
    pub app: String,
    /// Reach configuration: `baseline | lds | ic | ic+lds`.
    pub config: String,
    /// Workload scale: `tiny | quick | paper`.
    pub scale: String,
    /// Execution mode: `exact | sampled`.
    pub mode: String,
    /// Concurrent tenants; `0`/`1` (or absent) = untenanted.
    pub tenants: u64,
    /// Sharing policy, required when `tenants >= 2`:
    /// `partitioned | shared | subentry`.
    pub policy: Option<String>,
    /// Page-backing mode (absent = plain 4 KB pages on scattered
    /// frames): `4k | 2m | frag2m | coalesced`, the contiguity figure
    /// family's vocabulary
    /// ([`page_mode_config`](crate::figures::page_mode_config)). The
    /// coalescing modes switch coalesced TLB entries on, so their
    /// documents stamp schema v6.
    pub page_mode: Option<String>,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let j = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if let Some(cmd) = j.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd {other:?} (expected \"stats\" or \"shutdown\")")),
        };
    }
    let field = |k: &str| j.get(k).and_then(Json::as_str).map(str::to_string);
    let Some(app) = field("app") else {
        return Err("cell requests need an \"app\" field".to_string());
    };
    Ok(Request::Cell(CellRequest {
        app,
        config: field("config").unwrap_or_else(|| "ic+lds".to_string()),
        scale: field("scale").unwrap_or_else(|| "tiny".to_string()),
        mode: field("mode").unwrap_or_else(|| "exact".to_string()),
        tenants: j.get("tenants").and_then(Json::as_u64).unwrap_or(0),
        policy: field("policy"),
        page_mode: field("page_mode"),
    }))
}

/// The execution-mode descriptor entering [`CellKey`] — the one place
/// it is rendered, so every layer keys identically. Sampling windows
/// are spelled out in full: two scales with different windows are
/// different cells even if their label strings matched.
fn mode_descriptor(scale_label: &str, sampling: Option<&SamplingConfig>) -> String {
    match sampling {
        None => format!("scale={scale_label} exact"),
        Some(cfg) => format!("scale={scale_label} sampled {cfg:?}"),
    }
}

/// A validated, runnable experiment cell.
#[derive(Debug, Clone)]
pub struct ResolvedCell {
    /// Human-readable cell label (`app/config/scale/mode[...]`),
    /// echoed in response headers and prof span labels.
    pub label: String,
    /// The cell's identity — the result-cache key.
    pub key: CellKey,
    app: AppTrace,
    gpu: GpuConfig,
    reach: ReachConfig,
    sampling: Option<SamplingConfig>,
    /// The untenanted twin whose kernel cycles are the per-tenant
    /// slowdown basis ([`harness::fill_solo_cycles`]); `None` for
    /// untenanted cells. Itself a full cell: it is admitted through
    /// the same cache, so a sweep over tenant counts computes its
    /// solo anchor once.
    solo: Option<Box<ResolvedCell>>,
}

impl CellRequest {
    /// Validates the request against the suite/config/scale/mode
    /// vocabularies and resolves it into a runnable cell.
    pub fn resolve(&self) -> Result<ResolvedCell, String> {
        let scale = match self.scale.as_str() {
            "tiny" => Scale::tiny(),
            "quick" => Scale::quick(),
            "paper" => Scale::paper(),
            other => return Err(format!("unknown scale {other:?} (tiny|quick|paper)")),
        };
        let mut reach_solo = match self.config.as_str() {
            "baseline" => ReachConfig::baseline(),
            "lds" => ReachConfig::lds_only(),
            "ic" => ReachConfig::ic_only(),
            "ic+lds" | "ic_lds" => ReachConfig::ic_plus_lds(),
            other => return Err(format!("unknown config {other:?} (baseline|lds|ic|ic+lds)")),
        };
        let gpu = match self.page_mode.as_deref() {
            None => GpuConfig::default(),
            Some(pm) => {
                let Some((gpu, coalesce)) = crate::figures::page_mode_config(pm) else {
                    return Err(format!("unknown page_mode {pm:?} (4k|2m|frag2m|coalesced)"));
                };
                if let Some(max) = coalesce {
                    reach_solo = reach_solo.with_tlb_coalescing(max);
                }
                gpu
            }
        };
        let Some(base_app) = suite::by_name(&self.app, scale) else {
            return Err(format!("unknown app {:?}", self.app));
        };
        let sampling = match self.mode.as_str() {
            "exact" => None,
            "sampled" => Some(crate::figures::sampling_for(scale)),
            other => return Err(format!("unknown mode {other:?} (exact|sampled)")),
        };
        let mode_desc = mode_descriptor(&self.scale, sampling.as_ref());
        let mut solo_label =
            format!("{}/{}/{}/{}", self.app, self.config, self.scale, self.mode);
        if let Some(pm) = &self.page_mode {
            solo_label.push('/');
            solo_label.push_str(pm);
        }
        if self.tenants <= 1 {
            if self.policy.is_some() {
                return Err("\"policy\" only applies to tenanted requests".to_string());
            }
            let key = CellKey::new(base_app.name(), &gpu, &reach_solo, &mode_desc);
            return Ok(ResolvedCell {
                label: solo_label,
                key,
                app: base_app,
                gpu,
                reach: reach_solo,
                sampling,
                solo: None,
            });
        }
        if self.tenants > MAX_TENANTS as u64 {
            return Err(format!("tenants must be <= {MAX_TENANTS} (got {})", self.tenants));
        }
        let policy = match self.policy.as_deref() {
            Some("partitioned") => SharingPolicy::Partitioned,
            Some("shared") => SharingPolicy::Shared,
            Some("subentry") | Some("sub-entry") => SharingPolicy::SubEntry,
            Some(other) => {
                return Err(format!(
                    "unknown policy {other:?} (partitioned|shared|subentry)"
                ))
            }
            None => return Err("tenanted requests need a \"policy\" field".to_string()),
        };
        let tenants = self.tenants as u8;
        let app = AppTrace::replicate(&base_app, tenants);
        let reach = reach_solo.with_tenancy(tenants, policy);
        let key = CellKey::new(app.name(), &gpu, &reach, &mode_desc);
        let solo = ResolvedCell {
            label: solo_label.clone(),
            key: CellKey::new(base_app.name(), &gpu, &reach_solo, &mode_desc),
            app: base_app,
            gpu: gpu.clone(),
            reach: reach_solo,
            sampling,
            solo: None,
        };
        Ok(ResolvedCell {
            label: format!("{solo_label}/{tenants}t-{}", self.policy.as_deref().unwrap_or("")),
            key,
            app,
            gpu,
            reach,
            sampling,
            solo: Some(Box::new(solo)),
        })
    }
}

/// Admission counters, exposed on the `{"cmd":"stats"}` control line.
/// `requests = cache_hits + coalesced + simulations` over any quiesced
/// window that contained no internal solo-basis computations (those
/// add to `simulations` without a request of their own).
#[derive(Debug, Default)]
pub struct Counters {
    /// Cell requests admitted.
    pub requests: AtomicU64,
    /// Requests answered from the memo or the on-disk result cache.
    pub cache_hits: AtomicU64,
    /// Requests that coalesced onto an identical in-flight
    /// computation (same batch or another connection).
    pub coalesced: AtomicU64,
    /// Simulations actually run (cold cells plus internal solo
    /// bases) — the dedupe proof: duplicates never increment this.
    pub simulations: AtomicU64,
}

impl Counters {
    /// The `{"counters":{...}}` control-response document.
    pub fn to_json(&self) -> Json {
        let n = |v: &AtomicU64| Json::from(v.load(Ordering::Relaxed));
        Json::Obj(vec![(
            "counters".to_string(),
            Json::Obj(vec![
                ("requests".to_string(), n(&self.requests)),
                ("cache_hits".to_string(), n(&self.cache_hits)),
                ("coalesced".to_string(), n(&self.coalesced)),
                ("simulations".to_string(), n(&self.simulations)),
            ]),
        )])
    }
}

/// A one-shot rendezvous for an in-flight cell computation: the
/// computing worker fills it once; duplicate requests block on the
/// condvar instead of re-entering the simulator.
struct Flight {
    slot: Mutex<Option<Arc<CachedResult>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { slot: Mutex::new(None), cv: Condvar::new() }
    }

    fn fill(&self, result: Arc<CachedResult>) {
        *self.slot.lock().expect("flight lock") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Arc<CachedResult> {
        let mut g = self.slot.lock().expect("flight lock");
        loop {
            if let Some(r) = g.as_ref() {
                return Arc::clone(r);
            }
            g = self.cv.wait(g).expect("flight wait");
        }
    }
}

/// Warmup-checkpoint shards shared across concurrent serve workers
/// via acquire/return leases (the `GpuResourceTracker` idiom): the
/// first acquirer of a [`CheckpointKey`] captures (or disk-loads) the
/// shard while later acquirers wait on the condvar, then every lease
/// shares one `Arc`'d checkpoint. Shards stay resident after release
/// — they are a cache, the lease count only tracks concurrent use.
pub struct CheckpointShards {
    dir: Option<PathBuf>,
    inner: Mutex<HashMap<CheckpointKey, ShardSlot>>,
    cv: Condvar,
}

struct ShardSlot {
    ck: Option<Arc<Checkpoint>>,
    leases: u64,
}

/// An acquired checkpoint shard; dropping it returns the lease.
pub struct ShardLease<'a> {
    shards: &'a CheckpointShards,
    key: CheckpointKey,
    ck: Arc<Checkpoint>,
}

impl ShardLease<'_> {
    /// The shared checkpoint.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.ck
    }
}

impl Drop for ShardLease<'_> {
    fn drop(&mut self) {
        self.shards.release(&self.key);
    }
}

impl CheckpointShards {
    /// A tracker backed by the on-disk checkpoint cache in `dir`
    /// (`None` keeps shards in memory only).
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self { dir, inner: Mutex::new(HashMap::new()), cv: Condvar::new() }
    }

    /// Acquires the shard for `(app, gpu, warmup)`, capturing or
    /// disk-loading it if this is the first acquisition. Concurrent
    /// acquirers of the same key block until the capture finishes —
    /// one capture, many leases.
    pub fn acquire(&self, app: &AppTrace, gpu: &GpuConfig, warmup: u64) -> ShardLease<'_> {
        let key = CheckpointKey::new(app.name(), gpu, warmup);
        {
            let mut g = self.inner.lock().expect("shards lock");
            loop {
                match g.get_mut(&key) {
                    Some(slot) => {
                        if let Some(ck) = &slot.ck {
                            slot.leases += 1;
                            prof::add("serve.shard_reuse", 1);
                            return ShardLease { shards: self, key, ck: Arc::clone(ck) };
                        }
                        // Another worker is capturing this shard.
                        g = self.cv.wait(g).expect("shards wait");
                    }
                    None => {
                        g.insert(key.clone(), ShardSlot { ck: None, leases: 0 });
                        break;
                    }
                }
            }
        }
        let ck = Arc::new(harness::load_or_capture(app, gpu, warmup, self.dir.as_deref()));
        let mut g = self.inner.lock().expect("shards lock");
        let slot = g.get_mut(&key).expect("loading marker present");
        slot.ck = Some(Arc::clone(&ck));
        slot.leases += 1;
        self.cv.notify_all();
        ShardLease { shards: self, key, ck }
    }

    fn release(&self, key: &CheckpointKey) {
        let mut g = self.inner.lock().expect("shards lock");
        if let Some(slot) = g.get_mut(key) {
            slot.leases = slot.leases.saturating_sub(1);
        }
    }

    /// Shards currently resident (captured and shareable).
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .expect("shards lock")
            .values()
            .filter(|s| s.ck.is_some())
            .count()
    }

    /// Leases currently outstanding across all shards.
    pub fn outstanding(&self) -> u64 {
        self.inner.lock().expect("shards lock").values().map(|s| s.leases).sum()
    }
}

/// One streamed cell response: the header metadata plus the shared
/// result document.
#[derive(Debug, Clone)]
pub struct CellResponse {
    /// The request's cell label.
    pub label: String,
    /// `"cache"` (memo or disk hit), `"coalesced"` (rode an identical
    /// in-flight computation), or `"computed"` (this request ran the
    /// simulation).
    pub source: &'static str,
    /// Service time for this request in microseconds, admission to
    /// result availability.
    pub micros: u64,
    /// The memoized stats document.
    pub result: Arc<CachedResult>,
}

impl CellResponse {
    /// The response header line (no trailing newline).
    pub fn header(&self) -> String {
        let j = Json::Obj(vec![
            ("cell".to_string(), Json::from(self.label.as_str())),
            ("source".to_string(), Json::from(self.source)),
            ("schema_version".to_string(), Json::from(self.result.schema_version)),
            ("micros".to_string(), Json::from(self.micros)),
        ]);
        let mut s = String::new();
        j.write_compact(&mut s);
        s
    }
}

/// The shared server state: caches, coalescing table, checkpoint
/// shards, and counters. One instance serves every connection.
pub struct ServeState {
    workers: usize,
    cache_dir: Option<PathBuf>,
    memo: Mutex<HashMap<u64, Arc<CachedResult>>>,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    shards: CheckpointShards,
    /// Admission counters (the `{"cmd":"stats"}` document).
    pub counters: Counters,
}

impl ServeState {
    /// A fresh server state. `workers = 0` sizes the cold-cell pool to
    /// the machine; `cache_dir` holds the on-disk result cache
    /// (entries named by [`result_path`]); `checkpoint_dir` backs the
    /// shard tracker's checkpoint cache.
    pub fn new(
        workers: usize,
        cache_dir: Option<PathBuf>,
        checkpoint_dir: Option<PathBuf>,
    ) -> Self {
        Self {
            workers: if workers == 0 { crate::pool::default_workers() } else { workers },
            cache_dir,
            memo: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shards: CheckpointShards::new(checkpoint_dir),
            counters: Counters::default(),
        }
    }

    /// The shard tracker (tests observe residency/leases through it).
    pub fn shards(&self) -> &CheckpointShards {
        &self.shards
    }

    /// Memo probe, falling through to the on-disk result cache. A
    /// disk hit is promoted into the memo so the next probe is a pure
    /// map lookup.
    fn lookup(&self, fp: u64) -> Option<Arc<CachedResult>> {
        if let Some(r) = self.memo.lock().expect("memo lock").get(&fp) {
            return Some(Arc::clone(r));
        }
        let dir = self.cache_dir.as_deref()?;
        let bytes = std::fs::read(result_path(dir, fp)).ok()?;
        let r = Arc::new(decode_result(&bytes, fp)?);
        self.memo.lock().expect("memo lock").insert(fp, Arc::clone(&r));
        Some(r)
    }

    /// Runs one cold cell's simulation (no cache interaction).
    fn simulate(&self, cell: &ResolvedCell) -> RunStats {
        let mut stats = match cell.sampling {
            None => harness::run_one(&cell.app, cell.gpu.clone(), cell.reach),
            Some(cfg) => {
                let lease = self.shards.acquire(&cell.app, &cell.gpu, cfg.warmup);
                Variant::with_gpu(cell.label.clone(), cell.gpu.clone(), cell.reach)
                    .run_with_mode(&cell.app, Some(cfg), Some(lease.checkpoint()))
            }
        };
        if let Some(solo) = &cell.solo {
            let entry = self
                .lookup(solo.key.fingerprint())
                .expect("solo basis materialized by the dependency phase");
            let parsed = Json::parse(&entry.doc)
                .ok()
                .and_then(|j| run_stats_from_json(&j))
                .expect("cached solo document parses back");
            harness::fill_solo_cycles(&mut stats, &parsed);
        }
        stats
    }

    /// Computes one cold cell, memoizes it (memory + disk), resolves
    /// its flight, and retires its coalescing entry.
    fn compute_and_fill(&self, cell: &ResolvedCell, flight: &Flight) {
        let fp = cell.key.fingerprint();
        let stats = {
            let _span = prof::span_with("serve:cell", || cell.label.clone());
            self.simulate(cell)
        };
        let result = Arc::new(CachedResult {
            schema_version: run_stats_schema_version(&stats),
            doc: run_stats_to_json_string(&stats),
        });
        self.counters.simulations.fetch_add(1, Ordering::Relaxed);
        self.memo.lock().expect("memo lock").insert(fp, Arc::clone(&result));
        if let Some(dir) = &self.cache_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = harness::atomic_write(
                &result_path(dir, fp),
                &encode_result(RESULT_CACHE_VERSION, fp, &result),
            );
        }
        // Fill before retiring the coalescing entry: a request that
        // found the flight always resolves, and one that misses both
        // the flight and the memo cannot exist (memo was written
        // above, before this remove).
        flight.fill(result);
        self.inflight.lock().expect("inflight lock").remove(&fp);
    }

    /// Admits and answers one batch of resolved cells. Cold distinct
    /// cells run on the work-stealing pool in two phases —
    /// solo-basis/untenanted cells first, then tenanted cells that
    /// consume those bases — so a tenanted cell never blocks a pool
    /// worker on work queued behind it. Responses come back in
    /// request order.
    pub fn handle_batch(&self, cells: &[ResolvedCell]) -> Vec<CellResponse> {
        let start = Instant::now();
        enum Slot {
            Ready(Arc<CachedResult>, u64),
            Pending(Arc<Flight>, &'static str),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(cells.len());
        // (cell, flight) pairs this batch must compute; phase A =
        // untenanted + internal solo bases, phase B = tenanted.
        let mut phase_a: Vec<(&ResolvedCell, Arc<Flight>)> = Vec::new();
        let mut phase_b: Vec<(&ResolvedCell, Arc<Flight>)> = Vec::new();
        for cell in cells {
            self.counters.requests.fetch_add(1, Ordering::Relaxed);
            let _adm = prof::span_with("serve:admit", || cell.label.clone());
            let fp = cell.key.fingerprint();
            if let Some(r) = self.lookup(fp) {
                let _hit = prof::span_with("serve:cache_hit", || cell.label.clone());
                prof::add("serve.cache_hit", 1);
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                slots.push(Slot::Ready(r, start.elapsed().as_micros() as u64));
                continue;
            }
            let mut inflight = self.inflight.lock().expect("inflight lock");
            if let Some(fl) = inflight.get(&fp) {
                prof::add("serve.coalesced", 1);
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                slots.push(Slot::Pending(Arc::clone(fl), "coalesced"));
                continue;
            }
            let fl = Arc::new(Flight::new());
            inflight.insert(fp, Arc::clone(&fl));
            drop(inflight);
            if cell.solo.is_some() {
                phase_b.push((cell, Arc::clone(&fl)));
            } else {
                phase_a.push((cell, Arc::clone(&fl)));
            }
            slots.push(Slot::Pending(fl, "computed"));
        }
        // Admit the solo bases the tenanted cold cells depend on.
        // Already-cached or in-flight bases need no work here: the
        // tenanted compute's lookup finds them (in-flight ones are
        // guaranteed filled-and-memoized before phase B runs only if
        // they belong to this batch's phase A; foreign flights are
        // awaited below, before phase B starts).
        let mut foreign_bases: Vec<Arc<Flight>> = Vec::new();
        let mut internal_bases: Vec<&ResolvedCell> = Vec::new();
        for (cell, _) in &phase_b {
            let solo = cell.solo.as_deref().expect("phase B cells carry a solo twin");
            let sfp = solo.key.fingerprint();
            if self.lookup(sfp).is_some()
                || internal_bases.iter().any(|c| c.key.fingerprint() == sfp)
            {
                continue;
            }
            let mut inflight = self.inflight.lock().expect("inflight lock");
            if let Some(fl) = inflight.get(&sfp) {
                foreign_bases.push(Arc::clone(fl));
                continue;
            }
            let fl = Arc::new(Flight::new());
            inflight.insert(sfp, Arc::clone(&fl));
            drop(inflight);
            internal_bases.push(solo);
            phase_a.push((solo, fl));
        }
        if !phase_a.is_empty() {
            crate::pool::run_indexed(phase_a.len(), self.workers, |i| {
                let (cell, fl) = &phase_a[i];
                self.compute_and_fill(cell, fl);
            });
        }
        for fl in foreign_bases {
            let _ = fl.wait();
        }
        if !phase_b.is_empty() {
            crate::pool::run_indexed(phase_b.len(), self.workers, |i| {
                let (cell, fl) = &phase_b[i];
                self.compute_and_fill(cell, fl);
            });
        }
        cells
            .iter()
            .zip(slots)
            .map(|(cell, slot)| match slot {
                Slot::Ready(result, micros) => CellResponse {
                    label: cell.label.clone(),
                    source: "cache",
                    micros,
                    result,
                },
                Slot::Pending(fl, source) => {
                    let result = fl.wait();
                    CellResponse {
                        label: cell.label.clone(),
                        source,
                        micros: start.elapsed().as_micros() as u64,
                        result,
                    }
                }
            })
            .collect()
    }
}

/// Writes one `{"error":...}` line.
fn write_error(out: &mut impl Write, msg: &str) -> std::io::Result<()> {
    let j = Json::Obj(vec![("error".to_string(), Json::from(msg))]);
    let mut s = String::new();
    j.write_compact(&mut s);
    writeln!(out, "{s}")
}

/// Flushes a collected batch: answers it and streams header + stats
/// document per cell.
fn flush_batch(
    state: &ServeState,
    batch: &mut Vec<ResolvedCell>,
    out: &mut impl Write,
) -> std::io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let responses = state.handle_batch(batch);
    batch.clear();
    for r in responses {
        writeln!(out, "{}", r.header())?;
        // The document already ends with exactly one newline
        // (run_stats_to_json_string) — stream it byte-for-byte.
        out.write_all(r.result.doc.as_bytes())?;
    }
    out.flush()
}

/// Serves one connection: accumulates cell requests, flushes on blank
/// lines / EOF, answers control commands inline. Returns `true` when
/// the client requested shutdown.
fn handle_conn(state: &ServeState, stream: TcpStream) -> std::io::Result<bool> {
    if prof::is_enabled() {
        prof::set_lane("serve");
    }
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = std::io::BufWriter::new(stream);
    let mut batch: Vec<ResolvedCell> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            flush_batch(state, &mut batch, &mut out)?;
            continue;
        }
        match parse_request(line) {
            Ok(Request::Cell(req)) => match req.resolve() {
                Ok(cell) => batch.push(cell),
                Err(e) => {
                    flush_batch(state, &mut batch, &mut out)?;
                    write_error(&mut out, &e)?;
                    out.flush()?;
                }
            },
            Ok(Request::Stats) => {
                flush_batch(state, &mut batch, &mut out)?;
                let mut s = String::new();
                state.counters.to_json().write_compact(&mut s);
                writeln!(out, "{s}")?;
                out.flush()?;
            }
            Ok(Request::Shutdown) => {
                flush_batch(state, &mut batch, &mut out)?;
                let mut s = String::new();
                Json::Obj(vec![("ok".to_string(), Json::from("shutdown"))])
                    .write_compact(&mut s);
                writeln!(out, "{s}")?;
                out.flush()?;
                return Ok(true);
            }
            Err(e) => {
                flush_batch(state, &mut batch, &mut out)?;
                write_error(&mut out, &e)?;
                out.flush()?;
            }
        }
    }
    flush_batch(state, &mut batch, &mut out)
        .map(|_| false)
}

/// Runs the accept loop until a client sends `{"cmd":"shutdown"}`.
/// Each connection is served on its own thread against the shared
/// state; the shutdown handler wakes the (blocking) accept with a
/// loopback dial so the listener can observe the stop flag.
pub fn run_server(state: Arc<ServeState>, listener: TcpListener) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        conns.push(std::thread::spawn(move || {
            match handle_conn(&state, stream) {
                Ok(true) => {
                    stop.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it can see the flag.
                    let _ = TcpStream::connect(addr);
                }
                Ok(false) => {}
                Err(e) => eprintln!("gtr-serve: connection error: {e}"),
            }
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Client helper: submits `lines` as one write (then closes the write
/// half, which flushes the final batch) and returns every response
/// line. Used by the `gtr-serve --connect` client, `perf --serve`,
/// and the tests.
pub fn submit_lines(addr: SocketAddr, lines: &[String]) -> std::io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    for l in lines {
        writeln!(stream, "{l}")?;
    }
    stream.shutdown(Shutdown::Write)?;
    BufReader::new(stream).lines().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_line(app: &str, config: &str) -> CellRequest {
        CellRequest {
            app: app.to_string(),
            config: config.to_string(),
            scale: "tiny".to_string(),
            mode: "exact".to_string(),
            tenants: 0,
            policy: None,
            page_mode: None,
        }
    }

    #[test]
    fn parse_vocabulary() {
        assert_eq!(parse_request("{\"cmd\":\"stats\"}"), Ok(Request::Stats));
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}"), Ok(Request::Shutdown));
        assert!(parse_request("{\"cmd\":\"reboot\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"config\":\"lds\"}").is_err(), "app is required");
        let r = parse_request("{\"app\":\"GUPS\"}").expect("defaults fill in");
        assert_eq!(
            r,
            Request::Cell(CellRequest {
                app: "GUPS".to_string(),
                config: "ic+lds".to_string(),
                scale: "tiny".to_string(),
                mode: "exact".to_string(),
                tenants: 0,
                policy: None,
                page_mode: None,
            })
        );
        let r = parse_request("{\"app\":\"GUPS\",\"page_mode\":\"coalesced\"}")
            .expect("page_mode parses");
        let Request::Cell(req) = r else { panic!("cell request") };
        assert_eq!(req.page_mode.as_deref(), Some("coalesced"));
    }

    #[test]
    fn page_modes_resolve_to_distinct_cells() {
        let mut r = cell_line("GUPS", "ic+lds");
        r.page_mode = Some("turbo".to_string());
        assert!(r.resolve().is_err(), "unknown page mode");

        let base = cell_line("GUPS", "ic+lds").resolve().expect("valid");
        let mut fingerprints = vec![base.key.fingerprint()];
        for pm in ["2m", "frag2m", "coalesced"] {
            let mut r = cell_line("GUPS", "ic+lds");
            r.page_mode = Some(pm.to_string());
            let cell = r.resolve().expect("valid page mode");
            assert!(cell.label.ends_with(pm), "page mode labels the cell");
            fingerprints.push(cell.key.fingerprint());
        }
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 4, "every page mode is its own cell");

        // `4k` is spelled-out default: same machine, same result
        // identity, so it shares the default mode's cache entries.
        let mut r = cell_line("GUPS", "ic+lds");
        r.page_mode = Some("4k".to_string());
        let four_k = r.resolve().expect("valid");
        assert_eq!(four_k.key.fingerprint(), base.key.fingerprint());

        // The coalescing modes must produce schema-v6 documents end to
        // end: run one and check the stamped version.
        let state = ServeState::new(2, None, None);
        let mut r = cell_line("GUPS", "ic+lds");
        r.page_mode = Some("coalesced".to_string());
        let responses = state.handle_batch(&[r.resolve().expect("valid")]);
        assert_eq!(responses[0].result.schema_version, 6);
        assert!(responses[0].result.doc.contains("\"coalescing\""));
    }

    #[test]
    fn resolve_rejects_bad_fields() {
        assert!(cell_line("NOPE", "ic+lds").resolve().is_err());
        assert!(cell_line("GUPS", "turbo").resolve().is_err());
        let mut r = cell_line("GUPS", "ic+lds");
        r.scale = "huge".to_string();
        assert!(r.resolve().is_err());
        let mut r = cell_line("GUPS", "ic+lds");
        r.mode = "fast".to_string();
        assert!(r.resolve().is_err());
        let mut r = cell_line("GUPS", "ic+lds");
        r.tenants = 2;
        assert!(r.resolve().is_err(), "tenanted without policy");
        r.tenants = 99;
        r.policy = Some("shared".to_string());
        assert!(r.resolve().is_err(), "tenant count over MAX_TENANTS");
        let mut r = cell_line("GUPS", "ic+lds");
        r.policy = Some("shared".to_string());
        assert!(r.resolve().is_err(), "policy without tenants");
    }

    #[test]
    fn result_entry_round_trips_and_rejects_damage() {
        use gtr_sim::arena::{corrupt, Corruption};
        let r = CachedResult { schema_version: 4, doc: "{\"x\":1}\n".to_string() };
        let fp = 0xDEAD_BEEF_u64;
        let bytes = encode_result(RESULT_CACHE_VERSION, fp, &r);
        assert_eq!(decode_result(&bytes, fp), Some(r.clone()));
        assert_eq!(decode_result(&bytes, fp + 1), None, "misfiled entry");
        for way in [Corruption::Truncate(5), Corruption::FlipBit(16), Corruption::Trailing(3)] {
            assert_eq!(decode_result(&corrupt(&bytes, way), fp), None, "{way:?}");
        }
        let stale = encode_result(RESULT_CACHE_VERSION + 1, fp, &r);
        assert_eq!(decode_result(&stale, fp), None, "version bump invalidates");
    }

    #[test]
    fn duplicate_cells_coalesce_onto_one_simulation() {
        let state = ServeState::new(2, None, None);
        let cells: Vec<ResolvedCell> = [
            cell_line("GUPS", "baseline"),
            cell_line("GUPS", "ic+lds"),
            cell_line("GUPS", "ic+lds"),
        ]
        .iter()
        .map(|r| r.resolve().expect("valid"))
        .collect();
        let responses = state.handle_batch(&cells);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].source, "computed");
        assert_eq!(responses[1].source, "computed");
        assert_eq!(responses[2].source, "coalesced");
        assert_eq!(responses[1].result.doc, responses[2].result.doc);
        assert_eq!(state.counters.simulations.load(Ordering::Relaxed), 2);
        assert_eq!(state.counters.coalesced.load(Ordering::Relaxed), 1);
        // Resubmitting is all cache hits — the simulator is not
        // re-entered (the dedupe/memo proof the CI smoke relies on).
        let again = state.handle_batch(&cells);
        assert!(again.iter().all(|r| r.source == "cache"));
        assert_eq!(state.counters.simulations.load(Ordering::Relaxed), 2);
        assert_eq!(state.counters.cache_hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn shard_tracker_shares_one_capture() {
        let shards = CheckpointShards::new(None);
        let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
        let gpu = GpuConfig::default();
        let a = shards.acquire(&app, &gpu, 1_000);
        let b = shards.acquire(&app, &gpu, 1_000);
        assert_eq!(shards.resident(), 1, "one shared shard");
        assert_eq!(shards.outstanding(), 2, "two live leases");
        assert_eq!(a.checkpoint(), b.checkpoint());
        drop(a);
        drop(b);
        assert_eq!(shards.outstanding(), 0, "leases returned");
        assert_eq!(shards.resident(), 1, "shard stays resident (cache)");
    }
}
