//! Minimal JSON tree, writer and recursive-descent parser.
//!
//! The workspace runs in fully offline environments (no crates.io
//! registry), so machine-readable stats export cannot lean on `serde`.
//! This module is the replacement: a tiny owned JSON value with exact
//! round-tripping for the numbers the simulator produces (u64 counters
//! below 2^53 and finite f64 metrics), used by the stats exporter in
//! `gtr-core` and the schema validator in `gtr-bench`.
//!
//! Only the JSON subset the workspace emits is guaranteed to
//! round-trip; exotic inputs (huge exponents, non-BMP `\u` escapes)
//! parse on a best-effort basis.
//!
//! # Example
//!
//! ```
//! use gtr_sim::json::Json;
//!
//! let j = Json::Obj(vec![
//!     ("cycles".into(), Json::from(1234u64)),
//!     ("app".into(), Json::from("GUPS")),
//! ]);
//! let text = j.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(1234));
//! assert_eq!(back.get("app").and_then(Json::as_str), Some("GUPS"));
//! ```

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`: integral counters are exact
    /// up to 2^53, far beyond anything the simulator counts.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list (insertion order is
    /// preserved so emitted files diff cleanly).
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Looks up a key in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (must be a non-negative whole
    /// number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields, if the value is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(f) => Some(f),
            _ => None,
        }
    }

    /// Parses a JSON document. Trailing garbage after the top-level
    /// value is an error; leading/inter-token whitespace is fine.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace) into `out`. Reusing one
    /// `String` across calls keeps per-record emission allocation-free
    /// once the buffer has grown (the JSONL trace sink relies on this).
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation (committed artifacts are
    /// meant to be read and diffed by humans).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 prints the shortest string that parses back to
        // the same bits — exact round-trips for free.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences are
                // passed through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-5", "123456789", "1.5"] {
            let v = Json::parse(text).unwrap();
            let mut out = String::new();
            v.write_compact(&mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trips_exactly() {
        let x = 0.123456789012345_f64;
        let v = Json::Num(x);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64(), Some(x));
    }

    #[test]
    fn nested_structure_round_trips() {
        let j = Json::Obj(vec![
            ("app".into(), Json::from("GUPS \"quoted\"\n")),
            ("cycles".into(), Json::from(3_977_625u64)),
            (
                "epochs".into(),
                Json::Arr(vec![Json::Obj(vec![("cycle".into(), Json::from(100u64))])]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        let mut compact = String::new();
        j.write_compact(&mut compact);
        assert_eq!(Json::parse(&compact).unwrap(), j);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"a": 1, "b": "x", "c": [1,2], "d": true}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(j.get("d").and_then(Json::as_bool), Some(true));
        assert!(j.get("missing").is_none());
        assert!(Json::Num(1.5).as_u64().is_none(), "fractional is not u64");
        assert!(Json::Num(-1.0).as_u64().is_none(), "negative is not u64");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\":}"] {
            assert!(Json::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let j = Json::parse(r#""café \t\\""#).unwrap();
        assert_eq!(j.as_str(), Some("café \t\\"));
        let s = Json::Str("π ≈ 3".into());
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }
}
